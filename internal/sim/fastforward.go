package sim

import (
	"fmt"

	"mobilebench/internal/mem"
	"mobilebench/internal/power"
	"mobilebench/internal/profiler"
	"mobilebench/internal/soc"
	"mobilebench/internal/thermal"
	"mobilebench/internal/workload"
	"mobilebench/internal/xrand"
)

// Phase fast-forwarding. The tick loop's expensive work — scheduling, DVFS,
// cache/branch stream sampling, GPU texture sampling — settles quickly
// within a phase, but not to a fixed point: the schedutil feedback loop
// (frequency -> realized utilization -> next frequency) locks into a small
// limit cycle over adjacent OPPs (period 2 in practice), and the sampled
// miss profiles keep fluctuating with sampling noise around a stationary
// per-phase mean. Steady state here therefore means *periodic* frequencies
// plus *stationary* counter rates, and the fast-forward path exploits both:
//
//   - Cycle tiling. Once every cluster's OPP-quantized frequency exactly
//     reproduces the value it had p ticks earlier (p <= ffMaxPeriod) for
//     ffCycleConfirm full cycles, the last p exact ticks are taken as one
//     period of the steady state. The remaining span of the phase repeats
//     them: frozen metrics are tiled into the trace in cycle order
//     (trace.Series.AppendCycle), and the cheap evolving models (memory
//     lag, power accumulation, thermal RC) step per tick with the
//     cycle-position inputs, so frequency-driven oscillation in power and
//     load survives the jump.
//   - Window-mean rates. Cumulative counters (instructions, cycles, cache
//     and branch misses) advance at the mean per-tick rate measured over
//     the phase's exact ticks after a warm-up of ffWarmupRefreshes refresh
//     periods. Freezing a single tick's delta would bake one draw of the
//     miss-sampling noise (tens of percent) into the whole span; the
//     window mean estimates the stationary rate with noise/sqrt(draws).
//   - Decimated refresh stops. A jump never skips more than
//     ffSpanRefreshPeriods refresh periods: it lands just short of a
//     refresh tick, which then executes exactly — re-sampling the
//     cache/branch streams, re-polluting the SLC, refreshing the replay
//     ring — before the next jump. The rate window keeps folding these
//     fresh draws, so its estimate of the stationary rates tightens as the
//     phase progresses instead of freezing early-phase noise.
//
// The parent RNG stream is advanced in stride (xrand.SkipNorm) past the
// per-tick demand-noise draws, so every phase after a jump sees the exact
// noise sequence it would have seen tick-by-tick, and xrand.Split-derived
// child streams (which never consume parent state) are unaffected.
//
// The exact path (Config.FastForward == false) is untouched and remains
// byte-identical; fast-forwarded runs drift only where the skipped work
// would have re-sampled (miss-profile refreshes, SLC pollution, texture
// sampling, per-tick demand noise in placement), which the differential
// suite pins with per-metric tolerances.

const (
	// ffMaxPeriod is the longest governor limit cycle the detector tracks.
	// Schedutil's down-rate smoothing plus OPP quantization yields period-1
	// (parked) or period-2 (flip-flopping between adjacent OPPs) cycles;
	// 4 leaves headroom for compound cycles without tracking real history.
	ffMaxPeriod = 4
	// ffCycleConfirm is how many full cycles of exact reproduction are
	// required before the period counts as established.
	ffCycleConfirm = 2
	// ffMinRefreshes is how many miss-profile refresh points must pass
	// in-phase before a jump, so the rate window averages over several
	// independent re-samples of the cache/branch streams.
	ffMinRefreshes = 4
	// ffWarmupRefreshes is how many refresh periods at the start of a phase
	// are excluded from the rate window (cache warm-up, DVFS ramp).
	ffWarmupRefreshes = 2
	// ffSpanRefreshPeriods bounds a single jump to this many refresh
	// periods, so every ffSpanRefreshPeriods-th miss-profile refresh still
	// executes exactly and the sampled statistics keep re-drawing at a
	// decimated cadence across long phases.
	ffSpanRefreshPeriods = 4
	// ffMinJumpTicks is the minimum span worth jumping; shorter remainders
	// run exactly.
	ffMinJumpTicks = 8
	// ffDecayRelTol is the relative per-tick GPU/AIE frequency delta below
	// which their geometric decay counts as converged (idle decay approaches
	// the floor asymptotically and never reaches exact equality, unlike the
	// OPP-quantized CPU clusters).
	ffDecayRelTol = 1e-3
)

// ffFreqState is the frequency snapshot compared across ticks for period
// detection.
type ffFreqState struct {
	cpu [soc.NumClusters]float64
	gpu float64
	aie float64
}

// match reports whether two snapshots are the same operating point: CPU
// cluster frequencies are OPP-quantized, so exact equality is the signal;
// GPU/AIE decay geometrically and compare within ffDecayRelTol.
func (a *ffFreqState) match(b *ffFreqState) bool {
	for i := range a.cpu {
		if a.cpu[i] != b.cpu[i] {
			return false
		}
	}
	return relDelta(a.gpu, b.gpu) < ffDecayRelTol && relDelta(a.aie, b.aie) < ffDecayRelTol
}

// ffState accumulates per-phase steady-state evidence across exact ticks.
type ffState struct {
	refreshTicks int

	phaseIdx   int
	phaseStart int

	// nExact counts exact ticks executed this run. Jumps leave gaps in the
	// tick numbering, so every fast-forward ring (hist here, the tick
	// record, the input ring) indexes by this contiguous counter instead:
	// the tick after a jump is still the recorded cycle's successor.
	nExact int

	// hist holds the last ffMaxPeriod frequency snapshots, indexed
	// nExact % ffMaxPeriod; histLen counts snapshots recorded this phase.
	hist    [ffMaxPeriod]ffFreqState
	histLen int
	// cycleStable[p-1] counts consecutive ticks whose snapshot matched the
	// snapshot from p ticks earlier.
	cycleStable [ffMaxPeriod]int

	refreshes int

	// Rate estimators. Cycle counts are periodic and replayed exactly from
	// the ring; instructions and misses depend on the noisily re-sampled
	// miss profiles, so a span derives them from smoothed ratios instead:
	// instr = cycles x IPC, misses = instr x misses-per-instr. The ratios
	// are EWMA'd over the fresh draw at each exact refresh tick
	// (post-warm-up), which both averages the ~tens-of-percent sampling
	// noise and tracks the slow cache-warming trend across a long phase.
	rateDraws                          int
	ewmaIPC, ewmaCachePI, ewmaBranchPI float64
}

// ffRateAlpha is the EWMA weight per refresh draw (~6-draw half-life).
const ffRateAlpha = 0.12

func newFFState(refreshTicks int) *ffState {
	return &ffState{refreshTicks: refreshTicks, phaseIdx: -1}
}

// resetPhase restarts evidence gathering at a phase boundary.
func (st *ffState) resetPhase(tick, phaseIdx int) {
	st.phaseIdx = phaseIdx
	st.phaseStart = tick
	st.histLen = 0
	st.cycleStable = [ffMaxPeriod]int{}
	st.refreshes = 0
	st.rateDraws = 0
	st.ewmaIPC, st.ewmaCachePI, st.ewmaBranchPI = 0, 0, 0
}

// idx returns the contiguous index of the exact tick currently executing
// (the slot its ring entries land in).
func (st *ffState) idx() int { return st.nExact }

// observe folds one completed exact tick's state (the tick's frequency
// snapshot and counter deltas) and returns the detected steady-state period
// p >= 1, or 0 while the phase has not proven itself steady.
func (st *ffState) observe(tick, phaseIdx int, cur ffFreqState, dInstr, dCycles, dCacheMiss, dBranchMiss float64) int {
	if phaseIdx != st.phaseIdx {
		st.resetPhase(tick, phaseIdx)
	}

	for p := 1; p <= ffMaxPeriod; p++ {
		if p <= st.histLen && cur.match(&st.hist[(st.nExact-p)%ffMaxPeriod]) {
			st.cycleStable[p-1]++
		} else {
			st.cycleStable[p-1] = 0
		}
	}
	st.hist[st.nExact%ffMaxPeriod] = cur
	st.nExact++
	st.histLen++

	if tick%st.refreshTicks == 0 {
		st.refreshes++
		if tick-st.phaseStart >= ffWarmupRefreshes*st.refreshTicks {
			ipc, cpi, bpi := 0.0, 0.0, 0.0
			if dCycles > 0 && dInstr > 0 {
				ipc = dInstr / dCycles
				cpi = dCacheMiss / dInstr
				bpi = dBranchMiss / dInstr
			}
			if st.rateDraws == 0 {
				st.ewmaIPC, st.ewmaCachePI, st.ewmaBranchPI = ipc, cpi, bpi
			} else {
				st.ewmaIPC += ffRateAlpha * (ipc - st.ewmaIPC)
				st.ewmaCachePI += ffRateAlpha * (cpi - st.ewmaCachePI)
				st.ewmaBranchPI += ffRateAlpha * (bpi - st.ewmaBranchPI)
			}
			st.rateDraws++
		}
	}

	if st.refreshes < ffMinRefreshes || st.rateDraws < 2 {
		return 0
	}
	for p := 1; p <= ffMaxPeriod; p++ {
		n := ffCycleConfirm * p
		if n < ffMaxPeriod {
			n = ffMaxPeriod
		}
		if st.cycleStable[p-1] >= n {
			return p
		}
	}
	return 0
}

// rates returns the smoothed counter ratios a span advances with.
func (st *ffState) rates() (ipc, cachePI, branchPI float64) {
	return st.ewmaIPC, st.ewmaCachePI, st.ewmaBranchPI
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

// spanLength returns how many ticks after tick can be fast-forwarded while
// staying inside the current phase, short of any injected fault event
// (which must fire on its exact tick), and short of the next decimated
// refresh stop (which must execute exactly to re-draw sampled statistics).
// 0 means the jump is not worth it.
func spanLength(jw workload.Workload, dt float64, tick, ticks, phaseIdx, refreshTicks, abortTick, hangTick, panicTick int) int {
	// Last tick of the phase: estimate from the accumulated durations, then
	// let phaseIndexAt (the tick loop's authority) confirm, stepping down
	// over any float edge.
	endT := 0.0
	for i := 0; i <= phaseIdx && i < len(jw.Phases); i++ {
		endT += jw.Phases[i].Duration
	}
	last := int(endT / dt)
	if last > ticks-1 {
		last = ticks - 1
	}
	for last > tick && phaseIndexAt(jw, (float64(last)+0.5)*dt) != phaseIdx {
		last--
	}
	for _, ev := range [3]int{abortTick, hangTick, panicTick} {
		if ev > tick && ev <= last {
			last = ev - 1
		}
	}
	// Land just short of the next refresh stop, so the loop resumes exactly
	// on a tick where the miss profiles re-sample.
	stop := ffSpanRefreshPeriods * refreshTicks
	if kStop := stop - (tick+1)%stop; tick+kStop < last {
		last = tick + kStop
	}
	k := last - tick
	if k < ffMinJumpTicks {
		return 0
	}
	return k
}

// ffEvolving lists the metrics that keep changing across a fast-forwarded
// span (cumulative counters, first-order memory lag, thermal RC, energy);
// everything else is tiled from the steady cycle's last exact values.
// runSpan must emit exactly this set each span tick — Profiler.Trace's
// alignment check fails the run otherwise, so the two cannot silently
// drift apart.
var ffEvolving = map[string]bool{
	profiler.MetricUsedMem:     true,
	profiler.MetricWorkloadMem: true,
	"mem.used_mb":              true,
	"mem.workload_mb":          true,
	"mem.gpu_mb":               true,
	"mem.heap_mb":              true,
	"mem.media_mb":             true,
	"mem.free_mb":              true,
	"cpu.total_instr":          true,
	"cpu.total_cycles":         true,
	"energy.total_j":           true,
	"thermal.cpu_c":            true,
	"thermal.gpu_c":            true,
	"thermal.soc_c":            true,
	"thermal.skin_c":           true,
	"thermal.cpu_throttled":    true,
	profiler.MetricCacheMPKI:   true,
	profiler.MetricBranchMPKI:  true,
}

// tickRecord captures every emitted metric's value over the last
// ffMaxPeriod exact ticks (a ring indexed by the contiguous exact-tick
// counter, ffState.idx), in first-emitted order, so a span can tile the
// frozen ones in cycle order.
type tickRecord struct {
	idx   map[string]int
	names []string
	vals  [ffMaxPeriod][]float64
	cur   int
}

func newTickRecord() *tickRecord {
	return &tickRecord{idx: make(map[string]int, 200)}
}

// begin selects the ring slot the coming exact tick's samples land in.
func (r *tickRecord) begin(exactIdx int) { r.cur = exactIdx % ffMaxPeriod }

func (r *tickRecord) set(name string, v float64) {
	i, ok := r.idx[name]
	if !ok {
		i = len(r.names)
		r.idx[name] = i
		r.names = append(r.names, name)
		for s := range r.vals {
			r.vals[s] = append(r.vals[s], 0)
		}
	}
	r.vals[r.cur][i] = v
}

// cycleVals collects one metric's values over the steady cycle's p ticks in
// span order: the first span tick continues the cycle position after exact
// index last, i.e. the position of exact index last-p+1. out is reused
// scratch.
func (r *tickRecord) cycleVals(i, last, p int, out []float64) []float64 {
	out = out[:0]
	for j := 1; j <= p; j++ {
		out = append(out, r.vals[(last-p+j)%ffMaxPeriod][i])
	}
	return out
}

// tickEmitter fans one counter sample out to the active sinks: the full
// trace profiler (nil in TraceStreamed; filtered to the analysis set in
// TraceAuto), the streaming summary (nil in TraceFull), and the
// fast-forward tick record (nil unless Config.FastForward). In the default
// configuration it degenerates to exactly one Profiler.Sample call per
// sample, preserving the exact path's emission sequence bit for bit.
type tickEmitter struct {
	prof *profiler.Profiler
	sum  *profiler.Summary
	auto map[string]bool
	rec  *tickRecord
}

func (em *tickEmitter) sample(name string, v float64) {
	if em.prof != nil && (em.auto == nil || em.auto[name]) {
		em.prof.Sample(name, v)
	}
	if em.sum != nil {
		em.sum.Add(name, v)
	}
	if em.rec != nil {
		em.rec.set(name, v)
	}
}

// fillFrozen tiles k span ticks of every frozen metric from its steady-cycle
// values into the active sinks; last is the final exact tick's contiguous
// index, p the cycle period.
func (em *tickEmitter) fillFrozen(k, last, p int) {
	var scratch [ffMaxPeriod]float64
	for i, name := range em.rec.names {
		if ffEvolving[name] {
			continue
		}
		cyc := em.rec.cycleVals(i, last, p, scratch[:0])
		if em.prof != nil && (em.auto == nil || em.auto[name]) {
			if s := em.prof.SeriesOf(name); s != nil {
				s.AppendCycle(cyc, k)
			}
		}
		if em.sum != nil {
			// Cycle position j (0-based) covers ticks j, j+p, ... within
			// the span: k/p of them, plus one more for the first k%p.
			for j, v := range cyc {
				n := int64(k / p)
				if j < k%p {
					n++
				}
				if n > 0 {
					em.sum.AddN(name, v, n)
				}
			}
		}
	}
}

// ffTickIn is one cycle position's model inputs and per-tick aggregate
// contributions, captured on the exact tick and replayed across the span.
type ffTickIn struct {
	cpuLoad, gpuLoad, shadersBusy, gpuBusBusy, aieLoad float64
	clusterLoad                                        [soc.NumClusters]float64
	// cycles is the tick's CPU cycle count — periodic with the governor's
	// limit cycle (utilization x frequency), so it replays exactly.
	cycles    float64
	footprint mem.Footprint
	powerIn   power.Input
	heat      [thermal.NumNodes]float64
}

// ffSpan carries everything a fast-forwarded span replays.
type ffSpan struct {
	k    int // span length in ticks
	p    int // steady-state cycle period
	last int // contiguous exact-tick index of the final exact tick
	dt   float64
	// jitterDraws is how many demand-noise normals the exact tick loop
	// would draw per tick in this phase (one per task instance).
	jitterDraws int
	// Smoothed counter ratios (ffState.rates): per-tick instructions are
	// cycles x ipc, misses are instructions x the per-instr rates.
	ipc, cachePI, branchPI float64
	// ring holds the last ffMaxPeriod exact ticks' inputs, indexed
	// exactIdx % ffMaxPeriod; the span replays positions last-p+1 .. last.
	ring       *[ffMaxPeriod]ffTickIn
	totalMemMB float64
}

// runSpan executes k fast-forwarded ticks: the parent RNG advances in
// stride past the demand-noise draws, the cheap evolving models (memory
// lag, power accumulation, thermal RC) step per tick with cycle-position
// inputs, cumulative counters advance at the window-mean rate, and the
// evolving metric set is emitted per tick while everything frozen was
// tiled up front.
func runSpan(sp *ffSpan, rng *xrand.Rand, pm *power.Model, tm *thermal.Model, timing TimingModel,
	em *tickEmitter, agg *Aggregates, totInstr, totCycles, totCacheMiss, totBranchMiss *float64) error {
	em.fillFrozen(sp.k, sp.last, sp.p)

	for i := 1; i <= sp.k; i++ {
		// Span tick i replays exact index sp.last-p+1+((i-1) mod p), the
		// same position in the governor's limit cycle.
		in := &sp.ring[(sp.last-sp.p+1+(i-1)%sp.p)%ffMaxPeriod]

		rng.SkipNorm(sp.jitterDraws)
		memRes, err := timing.MemStep(in.footprint, sp.dt)
		if err != nil {
			return fmt.Errorf("sim: timing model in fast-forward span: %w", err)
		}
		pm.Step(in.powerIn)
		th := tm.Step(in.heat, sp.dt)

		ins := in.cycles * sp.ipc
		*totInstr += ins
		*totCycles += in.cycles
		*totCacheMiss += ins * sp.cachePI
		*totBranchMiss += ins * sp.branchPI

		agg.AvgCPULoad += in.cpuLoad
		agg.AvgGPULoad += in.gpuLoad
		agg.AvgShadersBusy += in.shadersBusy
		agg.AvgGPUBusBusy += in.gpuBusBusy
		agg.AvgAIELoad += in.aieLoad
		for c := range in.clusterLoad {
			agg.ClusterLoad[c] += in.clusterLoad[c]
		}

		em.sample(profiler.MetricUsedMem, memRes.UsedFrac)
		em.sample(profiler.MetricWorkloadMem, memRes.WorkloadFrac)
		em.sample("mem.used_mb", memRes.UsedMB)
		em.sample("mem.workload_mb", memRes.WorkloadMB)
		em.sample("mem.gpu_mb", memRes.FootprintByUse.GPUMB)
		em.sample("mem.heap_mb", memRes.FootprintByUse.CPUHeapMB)
		em.sample("mem.media_mb", memRes.FootprintByUse.MediaMB)
		em.sample("mem.free_mb", sp.totalMemMB-memRes.UsedMB)
		em.sample("cpu.total_instr", *totInstr)
		em.sample("cpu.total_cycles", *totCycles)
		em.sample("energy.total_j", pm.EnergyJ())
		em.sample("thermal.cpu_c", th.NodeC[thermal.NodeCPU])
		em.sample("thermal.gpu_c", th.NodeC[thermal.NodeGPU])
		em.sample("thermal.soc_c", th.NodeC[thermal.NodeSoC])
		em.sample("thermal.skin_c", th.SkinC)
		em.sample("thermal.cpu_throttled", boolToFloat(th.Throttled[thermal.NodeCPU]))
		em.sample(profiler.MetricCacheMPKI, safeDiv(*totCacheMiss, *totInstr)*1000)
		em.sample(profiler.MetricBranchMPKI, safeDiv(*totBranchMiss, *totInstr)*1000)

		if th.NodeC[thermal.NodeCPU] > agg.PeakCPUTempC {
			agg.PeakCPUTempC = th.NodeC[thermal.NodeCPU]
		}
		agg.AvgUsedMemFrac += memRes.UsedFrac
		agg.AvgUsedMemMB += memRes.UsedMB
		if memRes.UsedMB > agg.PeakUsedMemMB {
			agg.PeakUsedMemMB = memRes.UsedMB
		}
	}
	return nil
}
