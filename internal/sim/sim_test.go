package sim

import (
	"math"
	"testing"

	"mobilebench/internal/aie"
	"mobilebench/internal/cpu"
	"mobilebench/internal/gpu"
	"mobilebench/internal/profiler"
	"mobilebench/internal/soc"
	"mobilebench/internal/workload"
)

// tinyWorkload is a fast two-phase benchmark used throughout these tests.
func tinyWorkload() workload.Workload {
	return workload.Workload{
		Name:   "tiny",
		Suite:  "test",
		Target: workload.TargetCPU,
		Phases: []workload.Phase{
			{
				Name:     "single",
				Duration: 4,
				CPU: workload.CPUPhase{
					Tasks:       []workload.TaskSpec{{Count: 1, Demand: 0.9}},
					Mix:         cpu.InstrMix{LoadStoreFrac: 0.3, BranchFrac: 0.1, BaseILP: 2},
					ComputeDuty: 0.5,
				},
			},
			{
				Name:     "multi",
				Duration: 4,
				CPU: workload.CPUPhase{
					Tasks:       []workload.TaskSpec{{Count: 8, Demand: 0.8}},
					Mix:         cpu.InstrMix{LoadStoreFrac: 0.3, BranchFrac: 0.1, BaseILP: 2},
					ComputeDuty: 0.5,
				},
			},
		},
	}
}

func gpuWorkload() workload.Workload {
	return workload.Workload{
		Name:   "tinygpu",
		Suite:  "test",
		Target: workload.TargetGPU,
		Phases: []workload.Phase{{
			Name:     "scene",
			Duration: 5,
			CPU: workload.CPUPhase{
				Tasks:       []workload.TaskSpec{{Count: 2, Demand: 0.1}},
				Mix:         cpu.InstrMix{LoadStoreFrac: 0.3, BranchFrac: 0.1, BaseILP: 1.5},
				ComputeDuty: 0.5,
			},
			GPU: gpu.Scene{
				API: gpu.Vulkan, Width: 1920, Height: 1080,
				WorkPerPixel: 4000, TextureBytesPerFrame: 1 << 28,
				FramebufferFactor: 2, DrawCallsPerFrame: 500,
				TextureWorkingSetMB: 500,
			},
		}},
	}
}

func TestRunProducesAlignedTrace(t *testing.T) {
	eng := MustNew(Config{})
	res, err := eng.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Samples < 70 {
		t.Fatalf("8 s at 0.1 s ticks should give ~80 samples, got %d", res.Trace.Samples)
	}
	if res.Trace.NumMetrics() < 150 {
		t.Fatalf("trace carries %d metrics, want 150+", res.Trace.NumMetrics())
	}
	// The Table IV metrics must exist.
	for _, m := range []string{
		profiler.MetricCPULoad, profiler.MetricGPULoad, profiler.MetricShadersBusy,
		profiler.MetricGPUBusBusy, profiler.MetricAIELoad, profiler.MetricUsedMem,
	} {
		if res.Trace.Series(m) == nil {
			t.Errorf("missing metric %s", m)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	eng := MustNew(Config{})
	a, err := eng.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg != b.Agg {
		t.Fatalf("same run index diverged:\n%+v\n%+v", a.Agg, b.Agg)
	}
}

func TestDistinctRunsDiffer(t *testing.T) {
	eng := MustNew(Config{})
	a, _ := eng.Run(tinyWorkload(), 0)
	b, _ := eng.Run(tinyWorkload(), 1)
	if a.Agg == b.Agg {
		t.Fatal("distinct run indices produced identical aggregates (no jitter)")
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, _ := MustNew(Config{Seed: 1}).Run(tinyWorkload(), 0)
	b, _ := MustNew(Config{Seed: 2}).Run(tinyWorkload(), 0)
	if a.Agg == b.Agg {
		t.Fatal("different seeds produced identical aggregates")
	}
}

func TestMulticorePhaseLoadsAllClusters(t *testing.T) {
	eng := MustNew(Config{})
	res, _ := eng.Run(tinyWorkload(), 0)
	little := res.Trace.MustSeries("cpu.little.load")
	mid := res.Trace.MustSeries("cpu.mid.load")
	big := res.Trace.MustSeries("cpu.big.load")
	n := little.Len()
	// Second half is the 8-thread phase.
	for _, s := range []struct {
		name   string
		series float64
	}{
		{"little", meanTail(little.Values, n/2)},
		{"mid", meanTail(mid.Values, n/2)},
		{"big", meanTail(big.Values, n/2)},
	} {
		if s.series < 0.5 {
			t.Errorf("cluster %s load %.2f during multicore phase, want > 0.5", s.name, s.series)
		}
	}
	// First half: only Big heavily loaded.
	if m := meanHead(mid.Values, n/2); m > 0.2 {
		t.Errorf("mid cluster busy (%.2f) during single-core phase", m)
	}
}

func meanTail(v []float64, from int) float64 {
	s := 0.0
	for _, x := range v[from:] {
		s += x
	}
	return s / float64(len(v)-from)
}

func meanHead(v []float64, to int) float64 {
	s := 0.0
	for _, x := range v[:to] {
		s += x
	}
	return s / float64(to)
}

func TestGPUWorkloadCounters(t *testing.T) {
	eng := MustNew(Config{})
	res, err := eng.Run(gpuWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.AvgGPULoad <= 0.2 {
		t.Fatalf("GPU scene produced load %.2f", res.Agg.AvgGPULoad)
	}
	if res.Agg.AvgShadersBusy <= 0 || res.Agg.AvgGPUBusBusy <= 0 {
		t.Fatal("GPU sub-metrics missing")
	}
	// CPU-side load is light and on the Little cluster (Observation #8).
	if res.Agg.ClusterLoad[soc.Big] > 0.05 {
		t.Fatalf("GPU workload used the Big core: %.2f", res.Agg.ClusterLoad[soc.Big])
	}
}

func TestAV1FallbackRaisesCPULoad(t *testing.T) {
	// The sim couples the AIE's codec rejection back into CPU load.
	mkVideo := func(codec string) workload.Workload {
		return workload.Workload{
			Name: "video-" + codec, Suite: "test", Target: workload.TargetUX,
			Phases: []workload.Phase{{
				Name: "decode", Duration: 5,
				CPU: workload.CPUPhase{
					Tasks:       []workload.TaskSpec{{Count: 1, Demand: 0.05}},
					Mix:         cpu.InstrMix{LoadStoreFrac: 0.3, BranchFrac: 0.1, BaseILP: 1.5},
					ComputeDuty: 0.5,
				},
				AIE: []aie.Demand{{Op: aie.OpVideoDecode, Rate: 0.8, Codec: codec}},
			}},
		}
	}
	eng := MustNew(Config{})
	hw, _ := eng.Run(mkVideo("H264"), 0)
	sw, _ := eng.Run(mkVideo("AV1"), 0)
	if sw.Agg.AvgCPULoad <= hw.Agg.AvgCPULoad*1.5 {
		t.Fatalf("AV1 software decode CPU load %.2f not above hardware decode %.2f",
			sw.Agg.AvgCPULoad, hw.Agg.AvgCPULoad)
	}
	if hw.Agg.AvgAIELoad <= sw.Agg.AvgAIELoad {
		t.Fatal("hardware decode should load the AIE more than the rejected codec")
	}
}

func TestRunAveraged(t *testing.T) {
	eng := MustNew(Config{})
	res, err := eng.RunAveraged(tinyWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := eng.Run(tinyWorkload(), 0)
	if res.Agg.InstrCount == single.Agg.InstrCount {
		t.Fatal("averaged aggregates identical to a single run; averaging is a no-op")
	}
	if res.Trace == nil || res.Trace.Samples == 0 {
		t.Fatal("averaged trace missing")
	}
	// runs < 1 coerces to 1.
	if _, err := eng.RunAveraged(tinyWorkload(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalidWorkload(t *testing.T) {
	eng := MustNew(Config{})
	if _, err := eng.Run(workload.Workload{Name: "bad"}, 0); err == nil {
		t.Fatal("phaseless workload accepted")
	}
}

func TestConfigNormalize(t *testing.T) {
	eng := MustNew(Config{})
	cfg := eng.Config()
	if cfg.TickSec != 0.1 || cfg.Seed != 888 || cfg.Platform == nil {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if eng.Platform().Name == "" {
		t.Fatal("platform missing")
	}
}

func TestNewRejectsInvalidPlatform(t *testing.T) {
	p := soc.Snapdragon888HDK()
	p.GPU.NumShaders = 0
	if _, err := New(Config{Platform: p}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestAggregatesConsistency(t *testing.T) {
	eng := MustNew(Config{})
	res, _ := eng.Run(tinyWorkload(), 0)
	a := res.Agg
	if a.InstrCount <= 0 || a.IPC <= 0 {
		t.Fatalf("degenerate aggregates: %+v", a)
	}
	if a.IPC > 8 {
		t.Fatalf("IPC %.2f above the platform's theoretical max", a.IPC)
	}
	if a.CacheMPKI < 0 || a.BranchMPKI < 0 {
		t.Fatal("negative MPKI")
	}
	if a.AvgCPULoad < 0 || a.AvgCPULoad > 1 {
		t.Fatalf("CPU load out of range: %g", a.AvgCPULoad)
	}
	if math.Abs(a.RuntimeSec-8) > 0.5 {
		t.Fatalf("runtime %.2f, want ~8", a.RuntimeSec)
	}
	if a.PeakUsedMemMB < a.AvgUsedMemMB {
		t.Fatal("peak memory below average")
	}
}

func TestRuntimeJitterBounded(t *testing.T) {
	eng := MustNew(Config{})
	for run := 0; run < 5; run++ {
		res, _ := eng.Run(tinyWorkload(), run)
		if math.Abs(res.Agg.RuntimeSec-8) > 0.8 {
			t.Fatalf("run %d runtime %.2f drifted more than 10%%", run, res.Agg.RuntimeSec)
		}
	}
}

func TestGPUContentionVisibleInIPC(t *testing.T) {
	// A memory-hungry CPU phase must lose IPC when a heavy GPU scene runs
	// alongside (SLC pollution + bus contention).
	mk := func(withGPU bool) workload.Workload {
		w := workload.Workload{
			Name: "contend", Suite: "test", Target: workload.TargetCPU,
			Phases: []workload.Phase{{
				Name: "mem", Duration: 6,
				CPU: workload.CPUPhase{
					Tasks:       []workload.TaskSpec{{Count: 1, Demand: 0.9}},
					Mix:         cpu.InstrMix{LoadStoreFrac: 0.5, BranchFrac: 0.05, BaseILP: 2},
					ComputeDuty: 0.5,
				},
			}},
		}
		w.Phases[0].CPU.Access.WorkingSetBytes = 32 << 20
		w.Phases[0].CPU.Access.ReuseSkew = 0.3
		if withGPU {
			w.Phases[0].GPU = gpu.Scene{
				API: gpu.OpenGL, Width: 1920, Height: 1080,
				WorkPerPixel: 5000, TextureBytesPerFrame: 1 << 29,
				FramebufferFactor: 3, DrawCallsPerFrame: 900,
				TextureWorkingSetMB: 1200,
			}
		}
		return w
	}
	eng := MustNew(Config{})
	calm, _ := eng.Run(mk(false), 0)
	loud, _ := eng.Run(mk(true), 0)
	if loud.Agg.IPC >= calm.Agg.IPC {
		t.Fatalf("GPU contention did not depress IPC: %.3f >= %.3f",
			loud.Agg.IPC, calm.Agg.IPC)
	}
}

func TestPowerAndThermalCounters(t *testing.T) {
	eng := MustNew(Config{})
	res, err := eng.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"power.total_w", "power.cpu_w", "power.gpu_w", "energy.total_j",
		"thermal.cpu_c", "thermal.skin_c",
	} {
		if res.Trace.Series(m) == nil {
			t.Errorf("missing extension metric %s", m)
		}
	}
	if res.Agg.AvgPowerW <= 0 || res.Agg.EnergyJ <= 0 {
		t.Fatalf("power aggregates missing: %+v", res.Agg)
	}
	if res.Agg.PeakCPUTempC <= 25 {
		t.Fatalf("CPU never warmed above ambient: %.1f", res.Agg.PeakCPUTempC)
	}
	// Energy is the integral of power.
	energy := res.Trace.MustSeries("energy.total_j")
	if last := energy.Values[len(energy.Values)-1]; last <= 0 {
		t.Fatal("energy counter did not accumulate")
	}
	// The multicore phase draws more power than the single-core phase.
	p := res.Trace.MustSeries("power.cpu_w")
	n := p.Len()
	if meanTail(p.Values, n/2) <= meanHead(p.Values, n/2) {
		t.Fatal("multicore phase should out-draw the single-core phase")
	}
}

func TestThermalThrottleCapsFrequency(t *testing.T) {
	// A long all-core burn with an aggressive trip point must cap the Big
	// cluster's frequency when throttling is enabled.
	hot := workload.Workload{
		Name: "burn", Suite: "test", Target: workload.TargetCPU,
		Phases: []workload.Phase{{
			Name: "burn", Duration: 60,
			CPU: workload.CPUPhase{
				Tasks:       []workload.TaskSpec{{Count: 8, Demand: 0.95}},
				Mix:         cpu.InstrMix{LoadStoreFrac: 0.3, BranchFrac: 0.1, BaseILP: 2},
				ComputeDuty: 0.5,
			},
		}},
	}
	free := MustNew(Config{})
	resFree, err := free.Run(hot, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Throttling is off by default: frequency stays at max during the burn.
	fFree := resFree.Trace.MustSeries("cpu.big.freq_mhz")
	if fFree.Max() < 2900 {
		t.Fatalf("unthrottled burn never reached max frequency: %.0f MHz", fFree.Max())
	}

	throttled := MustNew(Config{EnableThermalThrottle: true})
	resThr, err := throttled.Run(hot, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With the development board's default 95C trip the burn may or may not
	// trip in 60 s; assert the plumbing instead: the throttle flag counter
	// exists and the run completes deterministically.
	if resThr.Trace.Series("thermal.cpu_throttled") == nil {
		t.Fatal("throttle counter missing")
	}
	if resThr.Agg.InstrCount <= 0 {
		t.Fatal("throttled run produced no work")
	}
}

func TestRunOnMidrangePlatform(t *testing.T) {
	// The pipeline is not tied to the flagship platform: the same workload
	// runs on a dual-cluster mid-range SoC, where heavy threads land on
	// the Gold (Mid) cluster because there is no prime core.
	eng := MustNew(Config{Platform: soc.Midrange750G()})
	res, err := eng.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.InstrCount <= 0 || res.Agg.IPC <= 0 {
		t.Fatalf("midrange run degenerate: %+v", res.Agg)
	}
	if res.Agg.ClusterLoad[soc.Big] != 0 {
		t.Fatalf("phantom prime-core load %.2f on a platform without one",
			res.Agg.ClusterLoad[soc.Big])
	}
	if res.Agg.ClusterLoad[soc.Mid] <= 0.2 {
		t.Fatalf("heavy threads should land on the Gold cluster: %.2f",
			res.Agg.ClusterLoad[soc.Mid])
	}
	// The flagship finishes the same work with a higher IPC (wider prime
	// core) — a sanity cross-platform comparison.
	flag, err := MustNew(Config{}).Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if flag.Agg.IPC <= res.Agg.IPC {
		t.Fatalf("flagship IPC %.2f not above midrange %.2f", flag.Agg.IPC, res.Agg.IPC)
	}
}

func TestGovernorSelection(t *testing.T) {
	// The performance governor pins max frequency; powersave pins minimum;
	// an unknown name errors.
	perf := MustNew(Config{Governor: "performance"})
	resPerf, err := perf.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := resPerf.Trace.MustSeries("cpu.big.freq_mhz")
	if f.Min() < 2999 {
		t.Fatalf("performance governor let frequency drop to %.0f MHz", f.Min())
	}

	save := MustNew(Config{Governor: "powersave"})
	resSave, err := save.Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := resSave.Trace.MustSeries("cpu.big.freq_mhz")
	if fs.Max() > 900 {
		t.Fatalf("powersave governor raised frequency to %.0f MHz", fs.Max())
	}

	// Governor choice is an energy/performance trade-off: powersave
	// retires fewer instructions per second but at lower power.
	if resSave.Agg.InstrCount >= resPerf.Agg.InstrCount {
		t.Fatal("powersave should retire less work in the same wall time")
	}
	if resSave.Agg.AvgPowerW >= resPerf.Agg.AvgPowerW {
		t.Fatal("powersave should draw less power")
	}

	if _, err := New(Config{Governor: "warp-speed"}); err != nil {
		t.Fatal("governor is validated at run time, construction should succeed")
	}
	eng := MustNew(Config{Governor: "warp-speed"})
	if _, err := eng.Run(tinyWorkload(), 0); err == nil {
		t.Fatal("unknown governor accepted")
	}
}
