package sim

import (
	"context"
	"math"
	"testing"
	"time"

	"mobilebench/internal/profiler"
	"mobilebench/internal/workload"
)

// The differential suite: every bundled analysis unit simulated twice — once
// on the exact per-tick path and once with phase fast-forwarding — and the
// aggregate drift pinned per metric. The tolerances encode the accepted
// approximation error of the fast-forward estimator (see DESIGN.md §11):
// tiled load/power/memory metrics replay the detected limit cycle and stay
// essentially exact, while the sampled counter rates (IPC, MPKI) carry both
// sampling noise and a systematic bias from decimated cache warm-up.
const (
	// ffTolLoad bounds relative drift on utilization, power, energy and
	// memory aggregates, which fast-forwarding tiles from exact ticks.
	ffTolLoad = 0.02
	// ffTolRate bounds relative drift on IPC and the derived instruction
	// count. Decimated refresh stops slow cache warm-up, so fast-forwarded
	// runs sit slightly cold relative to the exact path.
	ffTolRate = 0.15
	// ffTolMPKI bounds relative drift on the cache/branch miss rates. The
	// same warm-up deficit hits the miss counts harder than IPC because
	// they sit in the numerator of a small rate: the worst bundled unit
	// (Antutu CPU branch misses) drifts 23%.
	ffTolMPKI = 0.25
	// ffLoadFloor is the absolute utilization below which cluster-load
	// drift is not checked: a 0.001 absolute wobble on a 3%-loaded
	// cluster is measurement noise, not estimator error.
	ffLoadFloor = 0.05
)

func relDrift(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return 0
}

func checkDrift(t *testing.T, unit, metric string, ff, exact, tol float64) {
	t.Helper()
	if d := relDrift(ff, exact); d > tol {
		t.Errorf("%s: %s drift %.4f > %.2f (ff %.6g exact %.6g)", unit, metric, d, tol, ff, exact)
	}
}

func TestFastForwardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite simulates every unit twice")
	}
	exact := MustNew(Config{})
	ff := MustNew(Config{FastForward: true})
	for _, u := range workload.AnalysisUnits() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			re, err := exact.Run(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := ff.Run(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Fast-forwarding replaces tick execution, never tick
			// emission: the trace shape must be identical.
			if re.Trace.Samples != rf.Trace.Samples {
				t.Fatalf("sample count diverged: exact %d ff %d", re.Trace.Samples, rf.Trace.Samples)
			}
			if re.Trace.NumMetrics() != rf.Trace.NumMetrics() {
				t.Fatalf("metric count diverged: exact %d ff %d", re.Trace.NumMetrics(), rf.Trace.NumMetrics())
			}
			if re.Agg.RuntimeSec != rf.Agg.RuntimeSec {
				t.Fatalf("runtime diverged: exact %g ff %g", re.Agg.RuntimeSec, rf.Agg.RuntimeSec)
			}
			a, b := rf.Agg, re.Agg
			checkDrift(t, u.Name, "IPC", a.IPC, b.IPC, ffTolRate)
			checkDrift(t, u.Name, "InstrCount", a.InstrCount, b.InstrCount, ffTolRate)
			checkDrift(t, u.Name, "CacheMPKI", a.CacheMPKI, b.CacheMPKI, ffTolMPKI)
			checkDrift(t, u.Name, "BranchMPKI", a.BranchMPKI, b.BranchMPKI, ffTolMPKI)
			checkDrift(t, u.Name, "AvgCPULoad", a.AvgCPULoad, b.AvgCPULoad, ffTolLoad)
			checkDrift(t, u.Name, "AvgGPULoad", a.AvgGPULoad, b.AvgGPULoad, ffTolLoad)
			checkDrift(t, u.Name, "AvgShadersBusy", a.AvgShadersBusy, b.AvgShadersBusy, ffTolLoad)
			checkDrift(t, u.Name, "AvgGPUBusBusy", a.AvgGPUBusBusy, b.AvgGPUBusBusy, ffTolLoad)
			checkDrift(t, u.Name, "AvgAIELoad", a.AvgAIELoad, b.AvgAIELoad, ffTolLoad)
			checkDrift(t, u.Name, "AvgUsedMemMB", a.AvgUsedMemMB, b.AvgUsedMemMB, ffTolLoad)
			checkDrift(t, u.Name, "PeakUsedMemMB", a.PeakUsedMemMB, b.PeakUsedMemMB, ffTolLoad)
			checkDrift(t, u.Name, "AvgPowerW", a.AvgPowerW, b.AvgPowerW, ffTolLoad)
			checkDrift(t, u.Name, "EnergyJ", a.EnergyJ, b.EnergyJ, ffTolLoad)
			checkDrift(t, u.Name, "PeakCPUTempC", a.PeakCPUTempC, b.PeakCPUTempC, ffTolLoad)
			for k := range a.ClusterLoad {
				if a.ClusterLoad[k] < ffLoadFloor && b.ClusterLoad[k] < ffLoadFloor {
					continue
				}
				checkDrift(t, u.Name, "ClusterLoad", a.ClusterLoad[k], b.ClusterLoad[k], ffTolLoad)
			}
			t.Logf("%-28s IPC %.4f/%.4f  MPKI %.2f/%.2f  CPU %.3f/%.3f  E %.1f/%.1f",
				u.Name, a.IPC, b.IPC, a.CacheMPKI, b.CacheMPKI,
				a.AvgCPULoad, b.AvgCPULoad, a.EnergyJ, b.EnergyJ)
		})
	}
}

// TestFastForwardDeterministic pins that the approximate path is still a
// deterministic function of (workload, run): two fast-forwarded runs must be
// byte-identical to each other even though they drift from the exact path.
func TestFastForwardDeterministic(t *testing.T) {
	eng := MustNew(Config{FastForward: true})
	w := workload.AnalysisUnits()[0]
	a, err := eng.Run(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg != b.Agg {
		t.Fatalf("fast-forwarded run not deterministic:\n%+v\n%+v", a.Agg, b.Agg)
	}
	for _, m := range []string{profiler.MetricCPULoad, profiler.MetricGPULoad, "energy.total_j"} {
		sa, sb := a.Trace.MustSeries(m), b.Trace.MustSeries(m)
		for i := range sa.Values {
			if sa.Values[i] != sb.Values[i] {
				t.Fatalf("%s sample %d diverged: %g vs %g", m, i, sa.Values[i], sb.Values[i])
			}
		}
	}
}

// TestFastForwardNoJumpIsExact pins the fallback contract: phases too short
// to accumulate the evidence gate (ffMinRefreshes exact refreshes plus two
// post-warmup rate draws) never jump, and a fast-forwarding engine that
// never jumps is bit-identical to the exact path — the ff bookkeeping has no
// side effects of its own.
func TestFastForwardNoJumpIsExact(t *testing.T) {
	w := tinyWorkload()
	for i := range w.Phases {
		w.Phases[i].Duration = 1.5 // 15 ticks = 3 refreshes < ffMinRefreshes
	}
	a, err := MustNew(Config{}).Run(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(Config{FastForward: true}).Run(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg != b.Agg {
		t.Fatalf("no-jump fast-forward diverged from exact:\n%+v\n%+v", a.Agg, b.Agg)
	}
}

// TestFastForwardCancellation is the cancellation-latency guarantee: the
// engine re-checks ctx before and after every analytic jump, so a cancelled
// fast-forwarded run must abort promptly rather than completing its spans.
func TestFastForwardCancellation(t *testing.T) {
	eng := MustNew(Config{FastForward: true})
	w := workload.AnalysisUnits()[0]

	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(done, w, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := eng.RunContext(ctx, w, 0)
	lat := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
	if lat > time.Second {
		t.Fatalf("cancellation latency %v exceeds 1 s", lat)
	}
}

// TestTraceModeStreamed pins the streamed collection contract: no trace is
// materialized, and the summary reproduces the trace statistics exactly
// (same per-tick folds, so means match to float round-off).
func TestTraceModeStreamed(t *testing.T) {
	full, err := MustNew(Config{}).Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustNew(Config{TraceMode: TraceStreamed}).Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("TraceStreamed materialized a trace")
	}
	if res.Summary == nil {
		t.Fatal("TraceStreamed produced no summary")
	}
	if res.Agg != full.Agg {
		t.Fatalf("aggregates depend on TraceMode:\n%+v\n%+v", res.Agg, full.Agg)
	}
	for _, m := range []string{profiler.MetricCPULoad, profiler.MetricGPULoad, "energy.total_j"} {
		want := full.Trace.MustSeries(m).Mean()
		got := res.Summary.Mean(m)
		if math.Abs(want-got) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s: summary mean %g, trace mean %g", m, got, want)
		}
		if n := res.Summary.SlotOf(m).Stream.Count(); int(n) != full.Trace.Samples {
			t.Errorf("%s: summary count %d, trace samples %d", m, n, full.Trace.Samples)
		}
	}
}

// TestTraceModeAuto pins the hybrid mode: the analysis metric set is traced,
// everything else is summary-only.
func TestTraceModeAuto(t *testing.T) {
	res, err := MustNew(Config{TraceMode: TraceAuto}).Run(tinyWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Summary == nil {
		t.Fatal("TraceAuto must produce both a trace and a summary")
	}
	for _, m := range profiler.AnalysisMetrics() {
		if res.Trace.Series(m) == nil {
			t.Errorf("analysis metric %s not traced in TraceAuto", m)
		}
	}
	if res.Trace.Series("thermal.soc_c") != nil {
		t.Error("non-analysis metric materialized in TraceAuto")
	}
}
