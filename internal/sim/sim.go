// Package sim is the tick-based SoC simulation engine.
//
// The engine executes a workload (a phase timeline) against the platform
// models: each tick it places the phase's thread demands with the EAS
// scheduler, lets the DVFS governors pick cluster frequencies, drives
// sampled memory and branch streams through the cache hierarchy and branch
// predictor to obtain miss profiles, converts those into achieved IPC with
// the CPU performance model, steps the GPU, AIE, memory and storage models,
// and emits every counter into the profiler. Cross-component couplings the
// paper highlights are explicit: GPU bus pressure inflates CPU memory stall
// time (low IPC in graphics benchmarks), unsupported codecs bounce work from
// the AIE back to the CPU, and storage IO burns CPU submission time.
package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"mobilebench/internal/aie"
	"mobilebench/internal/branch"
	"mobilebench/internal/cache"
	"mobilebench/internal/cpu"
	"mobilebench/internal/fault"
	"mobilebench/internal/gpu"
	"mobilebench/internal/mem"
	"mobilebench/internal/par"
	"mobilebench/internal/power"
	"mobilebench/internal/profiler"
	"mobilebench/internal/sched"
	"mobilebench/internal/soc"
	"mobilebench/internal/thermal"
	"mobilebench/internal/workload"
	"mobilebench/internal/xrand"
)

// Config parameterizes the engine.
type Config struct {
	// Platform is the hardware description; nil selects the Snapdragon
	// 888 HDK.
	Platform *soc.Platform
	// TickSec is the simulation step and profiler sampling interval.
	TickSec float64
	// CacheSamples is how many memory accesses are sampled per cluster per
	// miss-profile refresh.
	CacheSamples int
	// BranchSamples is how many branches are sampled per cluster per
	// refresh.
	BranchSamples int
	// RefreshTicks is how often (in ticks) the sampled miss profiles are
	// refreshed within a phase; profiles are always refreshed on phase
	// change.
	RefreshTicks int
	// Seed is the root seed; every (workload, run) pair derives an
	// independent stream from it.
	Seed uint64
	// RuntimeJitterRel is the relative sigma of per-run duration jitter.
	RuntimeJitterRel float64
	// NoiseRel is the relative sigma of per-tick demand noise.
	NoiseRel float64
	// EnableThermalThrottle couples the thermal model back into DVFS:
	// when a node trips, its frequency is capped until it cools. Off by
	// default — the paper's development board (no battery, no casing)
	// did not throttle, and the calibration assumes it does not.
	EnableThermalThrottle bool
	// Governor selects the CPU DVFS governor: "schedutil" (default),
	// "performance" or "powersave". Useful for governor ablation studies;
	// the calibration assumes schedutil.
	Governor string
	// Fault, when non-nil, injects deterministic measurement faults
	// (crashes, hangs, aborts, panics, sample corruption) into runs for
	// chaos testing. Decisions are keyed by (workload, run, attempt) —
	// the attempt number travels in the run's context via
	// fault.WithAttempt — so injected chaos is reproducible for any
	// worker count. nil (the default) injects nothing.
	Fault *fault.Injector
	// FastForward enables phase fast-forwarding: once a phase reaches
	// steady state (settled DVFS, converged miss profiles, decayed GPU/AIE
	// transients) the remaining ticks are executed analytically instead of
	// one by one, with the RNG streams advanced in stride so later phases
	// see the exact noise sequence. Off (the default) keeps the exact,
	// byte-identical path; on, results drift within the tolerances pinned
	// by the differential suite (TestFastForwardDifferential). Incompatible
	// with EnableThermalThrottle, whose feedback loop never freezes.
	FastForward bool
	// TraceMode selects what a run materializes: TraceFull (default) the
	// complete per-tick counter trace, TraceStreamed only streaming summary
	// statistics (Result.Trace is nil), TraceAuto the analysis layer's
	// metric subset as a trace plus summaries for everything.
	TraceMode TraceMode
	// Timing supplies the memory/storage timing backend. nil (the default)
	// selects the in-process analytic models, bit-identical to the engine
	// before the seam existed; internal/cosim provides a supervised
	// external-process backend.
	Timing TimingProvider
}

// TraceMode selects how much of the per-tick counter stream a run keeps.
type TraceMode int

const (
	// TraceFull materializes every counter's full time series (the exact
	// historical behaviour; required for checkpointed collection).
	TraceFull TraceMode = iota
	// TraceStreamed folds every counter into streaming summary statistics
	// (profiler.Summary) and materializes no trace at all. Analyses that
	// need raw series (Figure 2/3, observations, ROI) are unavailable.
	TraceStreamed
	// TraceAuto materializes full series only for the metrics the analysis
	// layer reads raw (Table IV set, per-cluster loads, IPC, storage) and
	// folds everything else into summaries.
	TraceAuto
)

// DefaultConfig returns the configuration used throughout the repository.
func DefaultConfig() Config {
	return Config{
		Platform:         soc.Snapdragon888HDK(),
		TickSec:          0.1,
		CacheSamples:     1500,
		BranchSamples:    2000,
		RefreshTicks:     5,
		Seed:             888,
		RuntimeJitterRel: 0.01,
		NoiseRel:         0.03,
	}
}

// normalize fills zero fields with defaults.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.Platform == nil {
		c.Platform = d.Platform
	}
	if c.TickSec <= 0 {
		c.TickSec = d.TickSec
	}
	if c.CacheSamples <= 0 {
		c.CacheSamples = d.CacheSamples
	}
	if c.BranchSamples <= 0 {
		c.BranchSamples = d.BranchSamples
	}
	if c.RefreshTicks <= 0 {
		c.RefreshTicks = d.RefreshTicks
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.RuntimeJitterRel == 0 {
		c.RuntimeJitterRel = d.RuntimeJitterRel
	}
	if c.NoiseRel == 0 {
		c.NoiseRel = d.NoiseRel
	}
	return c
}

// Engine executes workloads.
//
// An Engine is safe for concurrent use: every Run acquires its mutable
// simulation state (caches, predictors, scheduler) exclusively from the
// engine's model pool and builds the rest (governor, power/thermal/GPU/AIE
// models, profiler and RNG streams) afresh per invocation, sharing only the
// immutable configuration, platform description and precomputed metric name
// tables. Each (workload, run) pair derives an independent random stream
// from the root seed, so concurrent runs produce bit-identical results to
// sequential ones.
type Engine struct {
	cfg  Config
	plat *soc.Platform
	// names holds every per-cluster and per-core counter name the tick
	// loop emits, formatted once at construction. The tick loop samples
	// ~190 metrics per tick; formatting those names per sample used to be
	// the pipeline's single largest allocation source.
	names [soc.NumClusters]clusterMetricNames

	// auto is the TraceAuto materialization set: the analysis layer's
	// platform-independent metrics plus this platform's per-cluster load
	// series.
	auto map[string]bool

	// free pools runModels across runs: cache tag/valid/LRU arrays and
	// predictor tables dominate per-run allocation after the name tables,
	// and a flushed model is behaviourally identical to a fresh one (see
	// runModels.reset), so reuse cannot change results. The pool grows to
	// the peak number of concurrent runs and never shrinks.
	mu   sync.Mutex
	free []*runModels
}

// runModels is the per-run model state an Engine pools: the shared L3/SLC,
// per-cluster cache hierarchies and branch predictors, the scheduler (whose
// core list and sort scratch are reusable but not concurrency-safe), and
// the auxiliary GPU/AIE/memory/storage/power/thermal models (cheap to
// reset, formerly rebuilt per run). Exactly one Run uses a runModels at a
// time; batch runs (RunBatchContext) reuse one acquisition across several
// runs with a reset in between.
type runModels struct {
	l3, slc   *cache.Cache
	clusters  []*clusterState
	scheduler *sched.EAS

	powerM   *power.Model
	thermalM *thermal.Model
	gpuM     *gpu.Model
	aieM     *aie.Model
	timingM  TimingModel
}

// newRunModels builds a fresh model set for one run.
func (e *Engine) newRunModels() (*runModels, error) {
	l3 := cache.MustNew(e.plat.L3)
	slc := cache.MustNew(e.plat.SLC)
	clusters := make([]*clusterState, 0, int(soc.NumClusters))
	//mblint:ignore ctxloop bounded setup over at most NumClusters CPU clusters; the tick loop is the cancellation point
	for _, k := range soc.Clusters() {
		cl := e.plat.Clusters[k]
		if cl.NumCores == 0 {
			// Platforms may omit a cluster (mid-range SoCs have no prime
			// core); absent clusters emit no counters.
			continue
		}
		h, err := cache.NewHierarchy(cl, l3, slc)
		if err != nil {
			return nil, err
		}
		clusters = append(clusters, &clusterState{
			kind: k,
			cl:   cl,
			pen:  cpu.DefaultPenalties(cl),
			hier: h,
			pred: branch.NewTournament(14, 14),
		})
	}
	var timing TimingModel
	if e.cfg.Timing != nil {
		t, err := e.cfg.Timing.NewTimingModel(e.plat.Memory, e.plat.Storage)
		if err != nil {
			return nil, err
		}
		timing = t
	} else {
		timing = newAnalyticTiming(e.plat.Memory, e.plat.Storage)
	}
	return &runModels{
		l3: l3, slc: slc, clusters: clusters, scheduler: sched.NewEAS(e.plat),
		powerM:   power.NewModel(power.DefaultCoefficients()),
		thermalM: thermal.NewModel(thermal.DefaultConfig()),
		// The GPU model's texture RNG is per-run; runWith re-seeds it via
		// ResetSeed before the first tick, so the placeholder stream here is
		// never consumed.
		gpuM:    gpu.NewModel(e.plat.GPU, e.plat.Display, xrand.New(1)),
		aieM:    aie.NewModel(e.plat.AIE),
		timingM: timing,
	}, nil
}

// reset returns a pooled model set to its initial state: caches flushed
// (an invalid line's stale tag/LRU words are never consulted, so a flushed
// cache is access-for-access identical to a new one), predictor tables
// zeroed, and all per-run cluster fields restored. A reset model therefore
// produces bit-identical runs to a freshly constructed one.
func (m *runModels) reset(cfg Config) error {
	m.l3.Flush()
	m.slc.Flush()
	for _, cs := range m.clusters {
		gov, err := governorByName(cfg.Governor)
		if err != nil {
			return err
		}
		cs.hier.Flush()
		cs.pred.Reset()
		cs.freqHz = cs.cl.MinFreqHz
		cs.gov = gov
		cs.stream = nil
		cs.branches = nil
		cs.miss = cpu.MissProfile{}
		cs.phaseIdx = -1
	}
	// Auxiliary models carry only accumulators and first-order state; their
	// Resets restore the exact just-constructed state. The GPU model is
	// re-seeded per run by runWith instead, because its reset needs the
	// run's RNG stream.
	m.powerM.Reset()
	m.thermalM.Reset()
	m.aieM.Reset()
	return m.timingM.Reset()
}

// acquireModels pops a pooled model set (resetting it) or builds one.
func (e *Engine) acquireModels() (*runModels, error) {
	e.mu.Lock()
	if n := len(e.free); n > 0 {
		m := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.mu.Unlock()
		return m, m.reset(e.cfg)
	}
	e.mu.Unlock()
	m, err := e.newRunModels()
	if err != nil {
		return nil, err
	}
	return m, m.reset(e.cfg)
}

func (e *Engine) releaseModels(m *runModels) {
	e.mu.Lock()
	e.free = append(e.free, m)
	e.mu.Unlock()
}

// clusterMetricNames caches one cluster's counter names.
type clusterMetricNames struct {
	ipc, cacheMPKI, branchMPKI        string
	util, freqMHz, load               string
	activeCores, overflow, topOPPFrac string
	level                             [4]string // l1d/l2/l3/slc _miss_per_instr
	core                              []coreMetricNames
}

// coreMetricNames caches one core's counter names.
type coreMetricNames struct {
	load, util, freqMHz, ipc, cacheMPKI, branchMPKI string
	level                                           [4]string
}

var cacheLevelSlugs = [4]string{"l1d", "l2", "l3", "slc"}

func buildMetricNames(plat *soc.Platform) [soc.NumClusters]clusterMetricNames {
	var names [soc.NumClusters]clusterMetricNames
	for _, k := range soc.Clusters() {
		n := &names[k]
		n.ipc = clusterMetric(k, "ipc")
		n.cacheMPKI = clusterMetric(k, "cache_mpki")
		n.branchMPKI = clusterMetric(k, "branch_mpki")
		n.util = clusterMetric(k, "util")
		n.freqMHz = clusterMetric(k, "freq_mhz")
		n.load = clusterMetric(k, "load")
		n.activeCores = clusterMetric(k, "active_cores")
		n.overflow = clusterMetric(k, "overflow")
		n.topOPPFrac = clusterMetric(k, "top_opp_frac")
		for i, lvl := range cacheLevelSlugs {
			n.level[i] = clusterMetric(k, lvl+"_miss_per_instr")
		}
		n.core = make([]coreMetricNames, plat.Clusters[k].NumCores)
		for c := range n.core {
			cn := &n.core[c]
			cn.load = coreMetric(k, c, "load")
			cn.util = coreMetric(k, c, "util")
			cn.freqMHz = coreMetric(k, c, "freq_mhz")
			cn.ipc = coreMetric(k, c, "ipc")
			cn.cacheMPKI = coreMetric(k, c, "cache_mpki")
			cn.branchMPKI = coreMetric(k, c, "branch_mpki")
			for i, lvl := range cacheLevelSlugs {
				cn.level[i] = coreMetric(k, c, lvl+"_miss_per_instr")
			}
		}
	}
	return names
}

// New creates an engine. A zero Config selects defaults.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.normalize()
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.TraceMode < TraceFull || cfg.TraceMode > TraceAuto {
		return nil, fmt.Errorf("sim: unknown TraceMode %d", cfg.TraceMode)
	}
	if cfg.FastForward && cfg.EnableThermalThrottle {
		// The throttle feedback loop (temperature capping next-tick DVFS)
		// never reaches a freezable steady state; the combination would
		// silently simulate a different machine.
		return nil, fmt.Errorf("sim: FastForward is incompatible with EnableThermalThrottle")
	}
	e := &Engine{cfg: cfg, plat: cfg.Platform, names: buildMetricNames(cfg.Platform)}
	e.auto = make(map[string]bool, 16)
	for _, m := range profiler.AnalysisMetrics() {
		e.auto[m] = true
	}
	for _, k := range soc.Clusters() {
		e.auto[e.names[k].load] = true
	}
	// Seed the pool with one model set so a sequential caller's first Run
	// pays no model construction either.
	m, err := e.newRunModels()
	if err != nil {
		return nil, err
	}
	e.free = append(e.free, m)
	return e, nil
}

// MustNew is New with a panic on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Platform returns the simulated platform.
func (e *Engine) Platform() *soc.Platform { return e.plat }

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// Aggregates are whole-run summary metrics (the Figure 1 quantities plus
// the Table IV load averages used for clustering and subsetting).
type Aggregates struct {
	Name       string
	RuntimeSec float64
	// InstrCount is the dynamic instruction count (process-scoped).
	InstrCount float64
	// IPC is instructions per busy cycle, weighted over the run.
	IPC float64
	// CacheMPKI counts misses across all cache levels per kilo-instruction.
	CacheMPKI float64
	// BranchMPKI counts mispredictions per kilo-instruction.
	BranchMPKI float64

	AvgCPULoad     float64
	AvgGPULoad     float64
	AvgShadersBusy float64
	AvgGPUBusBusy  float64
	AvgAIELoad     float64
	AvgUsedMemFrac float64
	AvgUsedMemMB   float64
	PeakUsedMemMB  float64
	// ClusterLoad is the mean load per CPU cluster (Little, Mid, Big).
	ClusterLoad [soc.NumClusters]float64

	// AvgPowerW and EnergyJ come from the power model — the repository's
	// beyond-the-paper extension (the paper lists power as a limitation).
	AvgPowerW float64
	EnergyJ   float64
	// PeakCPUTempC is the hottest CPU-node reading of the run.
	PeakCPUTempC float64
}

// Result is one run of one workload.
type Result struct {
	Workload string
	// Trace is the materialized counter time series; nil when the run was
	// collected with TraceStreamed (the Summary then carries the run's
	// statistics).
	Trace *profiler.Trace
	// Summary holds streaming per-metric statistics; nil in TraceFull mode
	// (the historical default, where the Trace carries everything).
	Summary *profiler.Summary
	Agg     Aggregates
	// TimingNotes and TimingDegraded report the timing backend's health
	// over this run (restarts, circuit-break degradation to the in-process
	// model) when Config.Timing implements TimingReporter. They describe
	// the measuring process, not the measurement: checkpoints do not
	// persist them, so restored runs carry none.
	TimingNotes    []string
	TimingDegraded bool
}

type clusterState struct {
	kind     soc.ClusterKind
	cl       soc.CPUCluster
	freqHz   float64
	gov      cpu.Governor
	pen      cpu.Penalties
	hier     *cache.Hierarchy
	pred     branch.Predictor
	stream   *cache.StreamGen
	branches *branch.Stream
	miss     cpu.MissProfile
	phaseIdx int
}

// Run executes one run of the workload. run indexes the repetition (the
// paper runs each benchmark three times); distinct runs get independent
// random streams and jitter.
func (e *Engine) Run(w workload.Workload, run int) (*Result, error) {
	return e.RunContext(context.Background(), w, run)
}

// ctxCheckTicks is how often (in ticks) RunContext polls for cancellation.
const ctxCheckTicks = 64

// RunContext is Run with cancellation: the context is polled every
// ctxCheckTicks simulation ticks (and around every fast-forward jump), so a
// cancelled run aborts within a few microseconds instead of completing the
// workload.
func (e *Engine) RunContext(ctx context.Context, w workload.Workload, run int) (*Result, error) {
	// Cache hierarchies, predictors, scheduler and auxiliary models come
	// from the engine's model pool; this run holds them exclusively until
	// it returns.
	models, err := e.acquireModels()
	if err != nil {
		return nil, err
	}
	defer e.releaseModels(models)
	return e.runWith(ctx, w, run, models)
}

// runWith executes one run on an already-acquired (and reset) model set.
func (e *Engine) runWith(ctx context.Context, w workload.Workload, run int, models *runModels) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	cfg := e.cfg

	// Chaos hook: decide this attempt's injected faults up front. The plan
	// is a pure function of (workload, run, attempt), so a faulted attempt
	// is reproducible and a clean retry is bit-identical to an unfaulted
	// run — the injector never touches the simulation RNG streams below.
	attempt := fault.Attempt(ctx)
	plan := cfg.Fault.PlanFor(w.Name, run, attempt)
	if plan.Crash {
		return nil, &fault.InjectedError{Mode: fault.ModeCrash, Unit: w.Name, Run: run, Attempt: attempt}
	}

	rng := xrand.New(cfg.Seed).Split(hashName(w.Name)).Split(uint64(run) + 1)

	// Jitter phase durations for this run.
	phases := make([]workload.Phase, len(w.Phases))
	copy(phases, w.Phases)
	//mblint:ignore ctxloop bounded per-run setup over a handful of phases; the tick loop below is the cancellation point
	for i := range phases {
		phases[i].Duration = rng.Jitter(phases[i].Duration, cfg.RuntimeJitterRel)
	}
	jw := workload.Workload{Name: w.Name, Suite: w.Suite, Target: w.Target, Phases: phases}

	l3, slc := models.l3, models.slc
	clusters := models.clusters
	scheduler := models.scheduler
	powerModel := models.powerM
	thermalModel := models.thermalM
	gpuModel := models.gpuM
	aieModel := models.aieM
	timingModel := models.timingM
	// Re-seed the pooled GPU model with this run's stream; Split leaves the
	// parent untouched, so the derivation point does not matter.
	gpuModel.ResetSeed(rng.Split(0x91))

	duration := jw.Duration()
	ticks := int(duration / cfg.TickSec)
	if ticks < 1 {
		ticks = 1
	}
	// Every counter appends one sample per tick; pre-sizing the series from
	// the phase-timeline tick count makes each backing array grow exactly
	// once instead of log(ticks) times per counter. In TraceStreamed mode no
	// series exist at all; in TraceAuto only the analysis set does.
	var prof *profiler.Profiler
	var sum *profiler.Summary
	switch cfg.TraceMode {
	case TraceStreamed:
		sum = profiler.NewSummary(cfg.TickSec)
	case TraceAuto:
		prof = profiler.NewCap(cfg.TickSec, ticks)
		sum = profiler.NewSummary(cfg.TickSec)
	default:
		prof = profiler.NewCap(cfg.TickSec, ticks)
	}
	em := tickEmitter{prof: prof, sum: sum}
	if cfg.TraceMode == TraceAuto {
		em.auto = e.auto
	}
	var ff *ffState
	if cfg.FastForward {
		ff = newFFState(cfg.RefreshTicks)
		em.rec = newTickRecord()
	}

	// Injected mid-run faults fire at deterministic tick positions.
	abortTick, hangTick, panicTick := -1, -1, -1
	if plan.AbortFrac > 0 {
		abortTick = int(plan.AbortFrac * float64(ticks))
	}
	if plan.HangSec > 0 {
		hangTick = ticks / 2
	}
	if plan.PanicFrac > 0 {
		panicTick = int(plan.PanicFrac * float64(ticks))
	}

	var (
		totInstr, totCycles         float64
		totCacheMiss, totBranchMiss float64
		prevGPU                     gpu.Result
		prevAIE                     aie.Result
		prevIO                      mem.IOResult
		agg                         Aggregates
		slcPollute                  *cache.StreamGen
		slcPolluteIdx               = -1
		// tasks is this run's per-tick task scratch: truncated (never
		// reallocated once warm) at the top of every tick. Run-local, so
		// concurrent RunContext calls never share it.
		tasks []sched.Task
		// Fast-forward bookkeeping: per-cluster load contributions this
		// tick, cumulative-miss values at tick entry (to measure the tick's
		// deltas for the rate window), and the ring of recent tick inputs a
		// jump replays. Dead weight on the exact path.
		tickClusterLoad                   [soc.NumClusters]float64
		ffPrevCacheMiss, ffPrevBranchMiss float64
		ffRing                            [ffMaxPeriod]ffTickIn
	)
	agg.Name = w.Name

	for tick := 0; tick < ticks; tick++ {
		if tick%ctxCheckTicks == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if ff != nil {
			ffPrevCacheMiss, ffPrevBranchMiss = totCacheMiss, totBranchMiss
			em.rec.begin(ff.idx())
		}
		switch tick {
		case abortTick:
			return nil, &fault.InjectedError{
				Mode: fault.ModeAbort, Unit: w.Name, Run: run, Attempt: attempt, Frac: plan.AbortFrac,
			}
		case panicTick:
			panic(fmt.Sprintf("fault: injected panic in %s run %d attempt %d", w.Name, run, attempt))
		case hangTick:
			// A hung profiling session: stall wall-clock time mid-run. The
			// run's context (typically a per-run timeout) can cancel it.
			timer := time.NewTimer(time.Duration(plan.HangSec * float64(time.Second)))
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		t := (float64(tick) + 0.5) * cfg.TickSec
		phase, _ := jw.PhaseAt(t)
		phaseIdx := phaseIndexAt(jw, t)

		// Build the tick's task set: workload threads plus demand bounced
		// back from the AIE (unsupported codecs) and the storage stack.
		tasks = tasks[:0]
		for _, ts := range phase.CPU.Tasks {
			for i := 0; i < ts.Count; i++ {
				d := rng.Jitter(ts.Demand, cfg.NoiseRel)
				tasks = append(tasks, sched.Task{Demand: d, Affinity: ts.Affinity})
			}
		}
		if prevAIE.CPUFallbackDemand > 0 {
			tasks = appendSplitDemand(tasks, prevAIE.CPUFallbackDemand)
		}
		if prevIO.CPUDemand > 0 {
			tasks = appendSplitDemand(tasks, prevIO.CPUDemand)
		}
		placement := scheduler.Place(tasks)

		contention := cpu.Contention{
			GPUBusLoad:       prevGPU.BusBusy,
			MemBandwidthLoad: 0.5 * prevGPU.BusBusy,
		}

		tickInstr, tickCycles := 0.0, 0.0
		cpuLoadSum := 0.0
		cpuDRAMBytes := 0.0
		var powerIn power.Input
		for _, cs := range clusters {
			load := placement.Clusters[cs.kind]

			// DVFS from the utilization seen this tick.
			cs.freqHz = cs.gov.Next(cs.cl, cs.freqHz, load.Util)

			// Realized utilization grows when the governor runs the
			// cluster below peak frequency: the same work occupies more
			// of each second.
			util := load.Util
			if cs.freqHz > 0 {
				util = load.Util * cs.cl.MaxFreqHz / cs.freqHz
			}
			if util > 1 {
				util = 1
			}

			clusterLoad := util * cs.freqHz / cs.cl.MaxFreqHz
			agg.ClusterLoad[cs.kind] += clusterLoad
			cpuLoadSum += clusterLoad * float64(cs.cl.NumCores)
			tickClusterLoad[cs.kind] = clusterLoad

			active := util > 1e-4
			if active && (cs.phaseIdx != phaseIdx || tick%cfg.RefreshTicks == 0) {
				if cs.phaseIdx != phaseIdx {
					cs.stream = cache.NewStreamGen(phase.CPU.Access,
						uint64(cs.kind)+1, rng.Split(uint64(phaseIdx)*16+uint64(cs.kind)))
					cs.branches = branch.NewStream(phase.CPU.Branches,
						rng.Split(uint64(phaseIdx)*64+uint64(cs.kind)+7))
					cs.phaseIdx = phaseIdx
				}
				cs.miss = e.sampleMissProfile(cs, phase.CPU, rng)
			}
			if !active {
				continue
			}

			ipc := cpu.IPC(cs.cl, phase.CPU.Mix, cs.miss, cs.pen, contention)
			duty := phase.CPU.ComputeDuty
			cores := float64(cs.cl.NumCores)
			cyc := util * cs.freqHz * cores * cfg.TickSec * duty
			ins := cyc * ipc
			tickInstr += ins
			tickCycles += cyc

			cacheMiss := 0.0
			for _, mpi := range cs.miss.MissesPerInstr {
				cacheMiss += mpi
			}
			totCacheMiss += cacheMiss * ins
			totBranchMiss += cs.miss.BranchMissPerInstr * ins
			cpuDRAMBytes += cs.miss.MissesPerInstr[3] * ins * 64

			nm := &e.names[cs.kind]
			em.sample(nm.ipc, ipc)
			em.sample(nm.cacheMPKI, cacheMiss*1000)
			em.sample(nm.branchMPKI, cs.miss.BranchMissPerInstr*1000)
		}
		// Clusters that were idle this tick still need aligned samples.
		for _, cs := range clusters {
			nm := &e.names[cs.kind]
			load := placement.Clusters[cs.kind]
			util := load.Util
			if cs.freqHz > 0 {
				util = load.Util * cs.cl.MaxFreqHz / cs.freqHz
			}
			if util > 1 {
				util = 1
			}
			if util <= 1e-4 {
				em.sample(nm.ipc, 0)
				em.sample(nm.cacheMPKI, 0)
				em.sample(nm.branchMPKI, 0)
			}
			powerIn.Clusters[cs.kind] = power.ClusterInput{
				FreqHz:    cs.freqHz,
				Util:      util,
				MaxFreqHz: cs.cl.MaxFreqHz,
				Cores:     cs.cl.NumCores,
			}
			em.sample(nm.util, util)
			em.sample(nm.freqMHz, cs.freqHz/1e6)
			em.sample(nm.load, util*cs.freqHz/cs.cl.MaxFreqHz)
			em.sample(nm.activeCores, float64(load.ActiveCores))
			em.sample(nm.overflow, load.Overflow)
			// Per-core views: cores within a cluster behave near
			// identically (the paper averages them for the same reason).
			ipcNow := 0.0
			cacheSum := 0.0
			for _, mpi := range cs.miss.MissesPerInstr {
				cacheSum += mpi
			}
			if util > 1e-4 {
				ipcNow = cpu.IPC(cs.cl, phase.CPU.Mix, cs.miss, cs.pen, contention)
			}
			for c := 0; c < cs.cl.NumCores; c++ {
				cn := &nm.core[c]
				em.sample(cn.load, util*cs.freqHz/cs.cl.MaxFreqHz)
				em.sample(cn.util, util)
				em.sample(cn.freqMHz, cs.freqHz/1e6)
				em.sample(cn.ipc, ipcNow)
				em.sample(cn.cacheMPKI, cacheSum*1000)
				em.sample(cn.branchMPKI, cs.miss.BranchMissPerInstr*1000)
				for i := range cn.level {
					em.sample(cn.level[i], cs.miss.MissesPerInstr[i])
				}
			}
			for i := range nm.level {
				em.sample(nm.level[i], cs.miss.MissesPerInstr[i])
			}
			// DVFS residency: fraction of this tick at the top operating
			// point (1 when pinned at max frequency).
			top := 0.0
			if cs.freqHz >= cs.cl.MaxFreqHz-1 {
				top = 1
			}
			em.sample(nm.topOPPFrac, top)
		}

		totInstr += tickInstr
		totCycles += tickCycles

		gpuRes := gpuModel.Step(phase.GPU, cfg.TickSec)
		// GPU texture traffic flows through the SoC-wide system-level
		// cache, displacing CPU lines; this is the mechanism behind the
		// depressed IPC of graphics-heavy benchmarks (Section V-A).
		if phase.GPU.TextureWorkingSetMB > 0 && gpuRes.BusBusy > 0 {
			if slcPollute == nil || slcPolluteIdx != phaseIdx {
				slcPollute = cache.NewStreamGen(cache.AccessPattern{
					WorkingSetBytes: uint64(phase.GPU.TextureWorkingSetMB * 1024 * 1024),
					SequentialFrac:  0.6,
					ReuseSkew:       0.4,
				}, 23, rng.Split(uint64(phaseIdx)*131+5))
				slcPolluteIdx = phaseIdx
			}
			slcPollute.Pollute(slc, int(gpuRes.BusBusy*float64(cfg.CacheSamples)*0.5))
		}
		aieRes := aieModel.Step(phase.AIE, cfg.TickSec)
		footprint := phase.Mem
		footprint.GPUMB += phase.GPU.TextureWorkingSetMB
		memRes, ioRes, err := timingModel.Step(footprint, phase.IO, cfg.TickSec)
		if err != nil {
			return nil, fmt.Errorf("sim: timing model at tick %d: %w", tick, err)
		}

		prevGPU, prevAIE, prevIO = gpuRes, aieRes, ioRes

		// Power and thermal extensions: observational counters by default,
		// with optional throttle feedback into the next tick's DVFS.
		powerIn.GPULoad = gpuRes.Load
		powerIn.AIELoad = aieRes.Load
		powerIn.DRAMBytes = gpuRes.BytesMoved + cpuDRAMBytes
		powerIn.StorageUtil = ioRes.Util
		powerIn.DTSec = cfg.TickSec
		pw := powerModel.Step(powerIn)
		var heat [thermal.NumNodes]float64
		heat[thermal.NodeCPU] = pw.CPUW()
		heat[thermal.NodeGPU] = pw.GPU
		heat[thermal.NodeSoC] = pw.AIE + pw.DRAM + pw.Storage + pw.Base
		th := thermalModel.Step(heat, cfg.TickSec)
		if cfg.EnableThermalThrottle {
			capCPU := thermalModel.FreqCapFactor(thermal.NodeCPU)
			for _, cs := range clusters {
				if max := cs.cl.MaxFreqHz * capCPU; cs.freqHz > max {
					cs.freqHz = max
				}
			}
		}
		if th.NodeC[thermal.NodeCPU] > agg.PeakCPUTempC {
			agg.PeakCPUTempC = th.NodeC[thermal.NodeCPU]
		}

		cpuLoad := cpuLoadSum / float64(e.plat.TotalCores())
		em.sample(profiler.MetricCPULoad, cpuLoad)
		em.sample(profiler.MetricGPULoad, gpuRes.Load)
		em.sample(profiler.MetricShadersBusy, gpuRes.ShadersBusy)
		em.sample(profiler.MetricGPUBusBusy, gpuRes.BusBusy)
		em.sample(profiler.MetricAIELoad, aieRes.Load)
		em.sample(profiler.MetricUsedMem, memRes.UsedFrac)
		em.sample(profiler.MetricWorkloadMem, memRes.WorkloadFrac)
		em.sample(profiler.MetricStorageUtil, ioRes.Util)
		em.sample("mem.used_mb", memRes.UsedMB)
		em.sample("mem.workload_mb", memRes.WorkloadMB)
		em.sample("mem.gpu_mb", memRes.FootprintByUse.GPUMB)
		em.sample("mem.heap_mb", memRes.FootprintByUse.CPUHeapMB)
		em.sample("mem.media_mb", memRes.FootprintByUse.MediaMB)
		em.sample("gpu.util", gpuRes.Util)
		em.sample("gpu.freq_mhz", gpuRes.FreqHz/1e6)
		em.sample("gpu.fps", gpuRes.FPS)
		em.sample("gpu.tex_miss_ratio", gpuRes.TexMissRatio)
		em.sample("gpu.bus_bytes", gpuRes.BytesMoved)
		em.sample("aie.util", aieRes.Util)
		em.sample("aie.freq_mhz", aieRes.FreqHz/1e6)
		em.sample("aie.cpu_fallback", aieRes.CPUFallbackDemand)
		em.sample("storage.bytes", ioRes.BytesMoved)
		em.sample("storage.read_mbps", phase.IO.SeqReadMBs+phase.IO.RandReadIOPS*4096/1e6)
		em.sample("storage.write_mbps", phase.IO.SeqWriteMBs+phase.IO.RandWriteIOPS*4096/1e6)
		em.sample("storage.iops", phase.IO.RandReadIOPS+phase.IO.RandWriteIOPS)
		em.sample("mem.free_mb", e.plat.Memory.TotalMB-memRes.UsedMB)
		em.sample("gpu.frame_time_ms", frameTimeMS(gpuRes.FPS))
		em.sample("gpu.drawcall_rate", gpuRes.FPS*phase.GPU.DrawCallsPerFrame)
		em.sample("slc.accesses", float64(slc.Stats().Accesses))
		em.sample("slc.misses", float64(slc.Stats().Misses))
		em.sample("l3.accesses", float64(l3.Stats().Accesses))
		em.sample("l3.misses", float64(l3.Stats().Misses))
		em.sample("cpu.total_instr", totInstr)
		em.sample("cpu.total_cycles", totCycles)
		em.sample("power.total_w", pw.TotalW())
		em.sample("power.cpu_w", pw.CPUW())
		em.sample("power.little_w", pw.Cluster[soc.Little])
		em.sample("power.mid_w", pw.Cluster[soc.Mid])
		em.sample("power.big_w", pw.Cluster[soc.Big])
		em.sample("power.gpu_w", pw.GPU)
		em.sample("power.aie_w", pw.AIE)
		em.sample("power.dram_w", pw.DRAM)
		em.sample("power.storage_w", pw.Storage)
		em.sample("energy.total_j", powerModel.EnergyJ())
		em.sample("thermal.cpu_c", th.NodeC[thermal.NodeCPU])
		em.sample("thermal.gpu_c", th.NodeC[thermal.NodeGPU])
		em.sample("thermal.soc_c", th.NodeC[thermal.NodeSoC])
		em.sample("thermal.skin_c", th.SkinC)
		em.sample("thermal.cpu_throttled", boolToFloat(th.Throttled[thermal.NodeCPU]))
		em.sample(profiler.MetricInstrRate, tickInstr/cfg.TickSec)
		if tickCycles > 0 {
			em.sample(profiler.MetricIPC, tickInstr/tickCycles)
		} else {
			em.sample(profiler.MetricIPC, 0)
		}
		em.sample(profiler.MetricCacheMPKI, safeDiv(totCacheMiss, totInstr)*1000)
		em.sample(profiler.MetricBranchMPKI, safeDiv(totBranchMiss, totInstr)*1000)

		agg.AvgCPULoad += cpuLoad
		agg.AvgGPULoad += gpuRes.Load
		agg.AvgShadersBusy += gpuRes.ShadersBusy
		agg.AvgGPUBusBusy += gpuRes.BusBusy
		agg.AvgAIELoad += aieRes.Load
		agg.AvgUsedMemFrac += memRes.UsedFrac
		agg.AvgUsedMemMB += memRes.UsedMB
		if memRes.UsedMB > agg.PeakUsedMemMB {
			agg.PeakUsedMemMB = memRes.UsedMB
		}

		// Phase fast-forwarding: capture this tick's inputs in the replay
		// ring, fold the steady-state evidence, and — once the governor's
		// limit cycle and the counter rates have proven stationary — execute
		// the rest of the phase analytically and jump to its boundary.
		// Cancellation is honoured around every jump, matching the tick
		// loop's ctxCheckTicks responsiveness even when a jump covers
		// thousands of ticks.
		if ff != nil {
			ffRing[ff.idx()%ffMaxPeriod] = ffTickIn{
				cpuLoad:     cpuLoad,
				gpuLoad:     gpuRes.Load,
				shadersBusy: gpuRes.ShadersBusy,
				gpuBusBusy:  gpuRes.BusBusy,
				aieLoad:     aieRes.Load,
				clusterLoad: tickClusterLoad,
				cycles:      tickCycles,
				footprint:   footprint,
				powerIn:     powerIn,
				heat:        heat,
			}
			var snap ffFreqState
			for _, cs := range clusters {
				snap.cpu[cs.kind] = cs.freqHz
			}
			snap.gpu, snap.aie = gpuRes.FreqHz, aieRes.FreqHz
			p := ff.observe(tick, phaseIdx, snap,
				tickInstr, tickCycles,
				totCacheMiss-ffPrevCacheMiss, totBranchMiss-ffPrevBranchMiss)
			if p > 0 {
				if k := spanLength(jw, cfg.TickSec, tick, ticks, phaseIdx, cfg.RefreshTicks, abortTick, hangTick, panicTick); k > 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					draws := 0
					for _, ts := range phase.CPU.Tasks {
						draws += ts.Count
					}
					sp := ffSpan{
						k: k, p: p, last: ff.idx() - 1, dt: cfg.TickSec,
						jitterDraws: draws,
						ring:        &ffRing,
						totalMemMB:  e.plat.Memory.TotalMB,
					}
					sp.ipc, sp.cachePI, sp.branchPI = ff.rates()
					if err := runSpan(&sp, rng, powerModel, thermalModel, timingModel,
						&em, &agg, &totInstr, &totCycles, &totCacheMiss, &totBranchMiss); err != nil {
						return nil, err
					}
					tick += k
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	n := float64(ticks)
	agg.AvgPowerW = powerModel.AveragePowerW()
	agg.EnergyJ = powerModel.EnergyJ()
	agg.RuntimeSec = duration
	agg.InstrCount = totInstr
	agg.IPC = safeDiv(totInstr, totCycles)
	agg.CacheMPKI = safeDiv(totCacheMiss, totInstr) * 1000
	agg.BranchMPKI = safeDiv(totBranchMiss, totInstr) * 1000
	agg.AvgCPULoad /= n
	agg.AvgGPULoad /= n
	agg.AvgShadersBusy /= n
	agg.AvgGPUBusBusy /= n
	agg.AvgAIELoad /= n
	agg.AvgUsedMemFrac /= n
	agg.AvgUsedMemMB /= n
	for k := range agg.ClusterLoad {
		agg.ClusterLoad[k] /= n
	}

	var tr *profiler.Trace
	if prof != nil {
		var err error
		tr, err = prof.Trace()
		if err != nil {
			return nil, err
		}
	}
	if sum != nil {
		sum.Ticks = ticks
	}

	// Chaos hook: corrupt the finished measurement the way a flaky
	// profiler session would. Skew scales both the trace and the intensity
	// aggregates — a self-consistent but non-representative run that only
	// outlier rejection can catch; drop/NaN damage the trace so validation
	// (and, failing that, repair) has real work to do.
	if plan.Faulty() {
		if f := plan.SkewFactor; f != 0 && f != 1 {
			agg = skewAgg(agg, f)
		}
		if tr != nil {
			plan.Corrupt(tr)
		}
	}
	res := &Result{Workload: w.Name, Trace: tr, Summary: sum, Agg: agg}
	if rep, ok := timingModel.(TimingReporter); ok {
		res.TimingNotes, res.TimingDegraded = rep.TimingReport()
	}
	return res, nil
}

// skewAgg scales the intensity aggregates of a run by f, leaving the
// extensive run identity (runtime) untouched. It models a run whose whole
// measurement session was miscalibrated by a constant factor.
func skewAgg(a Aggregates, f float64) Aggregates {
	a.InstrCount *= f
	a.IPC *= f
	a.CacheMPKI *= f
	a.BranchMPKI *= f
	a.AvgCPULoad *= f
	a.AvgGPULoad *= f
	a.AvgShadersBusy *= f
	a.AvgGPUBusBusy *= f
	a.AvgAIELoad *= f
	a.AvgUsedMemFrac *= f
	a.AvgUsedMemMB *= f
	a.PeakUsedMemMB *= f
	for k := range a.ClusterLoad {
		a.ClusterLoad[k] *= f
	}
	a.AvgPowerW *= f
	a.EnergyJ *= f
	return a
}

// sampleMissProfile refreshes a cluster's measured memory/branch behaviour
// by driving sampled synthetic streams through the cache hierarchy and
// branch predictor.
func (e *Engine) sampleMissProfile(cs *clusterState, cp workload.CPUPhase, rng *xrand.Rand) cpu.MissProfile {
	var miss cpu.MissProfile
	n := e.cfg.CacheSamples
	if n > 0 && cp.Mix.LoadStoreFrac > 0 {
		counts := cs.stream.Batch(cs.hier, n)
		for i := 0; i < 4; i++ {
			miss.MissesPerInstr[i] = float64(counts[i]) / float64(n) * cp.Mix.LoadStoreFrac
		}
	}
	bn := e.cfg.BranchSamples
	if bn > 0 && cp.Mix.BranchFrac > 0 {
		wrong := cs.branches.Measure(cs.pred, bn)
		miss.BranchMissPerInstr = float64(wrong) / float64(bn) * cp.Mix.BranchFrac
	}
	_ = rng
	return miss
}

// RunAveraged executes runs repetitions sequentially and returns the
// averaged trace and aggregates (the paper's methodology: three runs,
// metrics averaged).
func (e *Engine) RunAveraged(w workload.Workload, runs int) (*Result, error) {
	return e.RunAveragedContext(context.Background(), w, runs, 1)
}

// RunBatchContext executes runs r0..r1-1 of the workload sequentially on a
// single model-pool acquisition, resetting the models between runs. The
// per-run pool traffic (mutex, reset bookkeeping, GPU re-seed scaffolding)
// amortizes across the batch; results are bit-identical to r1-r0 separate
// RunContext calls because a reset model set is state-identical to a fresh
// one and every run derives its own RNG stream.
func (e *Engine) RunBatchContext(ctx context.Context, w workload.Workload, r0, r1 int) ([]*Result, error) {
	if r1 <= r0 {
		return nil, nil
	}
	models, err := e.acquireModels()
	if err != nil {
		return nil, err
	}
	defer e.releaseModels(models)
	out := make([]*Result, 0, r1-r0)
	for r := r0; r < r1; r++ {
		if r > r0 {
			if err := models.reset(e.cfg); err != nil {
				return nil, err
			}
		}
		res, err := e.runWith(ctx, w, r, models)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunAveragedContext is RunAveraged with cancellation and a worker pool:
// the runs repetitions fan out over up to workers goroutines (workers <= 0
// selects all CPUs; 1 keeps the sequential path), batched so each worker
// amortizes one model-pool acquisition over its contiguous chunk of runs.
// Because every run owns an independent random stream, the merged result is
// bit-identical for any worker count: runs are averaged in run order
// regardless of completion order.
func (e *Engine) RunAveragedContext(ctx context.Context, w workload.Workload, runs, workers int) (*Result, error) {
	if runs < 1 {
		runs = 1
	}
	nw := workers
	if nw <= 0 {
		nw = runtime.NumCPU()
	}
	chunks := nw
	if chunks > runs {
		chunks = runs
	}
	results := make([]*Result, runs)
	err := par.ForEach(ctx, workers, chunks, func(ctx context.Context, c int) error {
		r0 := c * runs / chunks
		r1 := (c + 1) * runs / chunks
		batch, err := e.RunBatchContext(ctx, w, r0, r1)
		if err != nil {
			return err
		}
		copy(results[r0:r1], batch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return AverageResults(w.Name, results)
}

// AverageResults merges per-run results (ordered by run index) into the
// run-averaged result: traces are averaged sample-wise (when the runs
// carry traces), summaries are pooled in run order (when they carry
// summaries), and aggregates are folded in run order. The fold order is
// fixed so that parallel collection paths reproduce the sequential result
// exactly.
func AverageResults(name string, results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("sim: no results to average for %s", name)
	}
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("sim: missing run %d result for %s", i, name)
		}
		if (r.Trace == nil) != (results[0].Trace == nil) ||
			(r.Summary == nil) != (results[0].Summary == nil) {
			return nil, fmt.Errorf("sim: run %d of %s mixes trace modes", i, name)
		}
	}
	var mean *profiler.Trace
	if results[0].Trace != nil {
		traces := make([]*profiler.Trace, len(results))
		for i, r := range results {
			traces[i] = r.Trace
		}
		var err error
		mean, err = profiler.MeanTraces(traces)
		if err != nil {
			return nil, err
		}
	}
	var merged *profiler.Summary
	if results[0].Summary != nil {
		sums := make([]*profiler.Summary, len(results))
		for i, r := range results {
			sums[i] = r.Summary
		}
		var err error
		merged, err = profiler.MergeSummaries(sums)
		if err != nil {
			return nil, err
		}
	}
	agg := results[0].Agg
	for _, r := range results[1:] {
		agg = addAgg(agg, r.Agg)
	}
	agg = scaleAgg(agg, 1/float64(len(results)))
	agg.Name = name
	return &Result{Workload: name, Trace: mean, Summary: merged, Agg: agg}, nil
}

func addAgg(a, b Aggregates) Aggregates {
	a.RuntimeSec += b.RuntimeSec
	a.InstrCount += b.InstrCount
	a.IPC += b.IPC
	a.CacheMPKI += b.CacheMPKI
	a.BranchMPKI += b.BranchMPKI
	a.AvgCPULoad += b.AvgCPULoad
	a.AvgGPULoad += b.AvgGPULoad
	a.AvgShadersBusy += b.AvgShadersBusy
	a.AvgGPUBusBusy += b.AvgGPUBusBusy
	a.AvgAIELoad += b.AvgAIELoad
	a.AvgUsedMemFrac += b.AvgUsedMemFrac
	a.AvgUsedMemMB += b.AvgUsedMemMB
	if b.PeakUsedMemMB > a.PeakUsedMemMB {
		a.PeakUsedMemMB = b.PeakUsedMemMB
	}
	for k := range a.ClusterLoad {
		a.ClusterLoad[k] += b.ClusterLoad[k]
	}
	a.AvgPowerW += b.AvgPowerW
	a.EnergyJ += b.EnergyJ
	if b.PeakCPUTempC > a.PeakCPUTempC {
		a.PeakCPUTempC = b.PeakCPUTempC
	}
	return a
}

func scaleAgg(a Aggregates, f float64) Aggregates {
	a.RuntimeSec *= f
	a.InstrCount *= f
	a.IPC *= f
	a.CacheMPKI *= f
	a.BranchMPKI *= f
	a.AvgCPULoad *= f
	a.AvgGPULoad *= f
	a.AvgShadersBusy *= f
	a.AvgGPUBusBusy *= f
	a.AvgAIELoad *= f
	a.AvgUsedMemFrac *= f
	a.AvgUsedMemMB *= f
	for k := range a.ClusterLoad {
		a.ClusterLoad[k] *= f
	}
	a.AvgPowerW *= f
	a.EnergyJ *= f
	return a
}

// appendSplitDemand appends a capacity demand to dst split into schedulable
// task chunks no larger than a Big core. Appending into the caller's scratch
// keeps the tick loop free of per-tick slice garbage.
func appendSplitDemand(dst []sched.Task, total float64) []sched.Task {
	for total > 0 {
		d := total
		if d > 0.9 {
			d = 0.9
		}
		dst = append(dst, sched.Task{Demand: d})
		total -= d
	}
	return dst
}

func phaseIndexAt(w workload.Workload, t float64) int {
	acc := 0.0
	for i, p := range w.Phases {
		if t < acc+p.Duration {
			return i
		}
		acc += p.Duration
	}
	return len(w.Phases) - 1
}

func clusterMetric(k soc.ClusterKind, name string) string {
	return fmt.Sprintf("cpu.%s.%s", clusterSlug(k), name)
}

func coreMetric(k soc.ClusterKind, core int, name string) string {
	return fmt.Sprintf("cpu.%s.core%d.%s", clusterSlug(k), core, name)
}

func clusterSlug(k soc.ClusterKind) string {
	switch k {
	case soc.Little:
		return "little"
	case soc.Mid:
		return "mid"
	case soc.Big:
		return "big"
	default:
		return "unknown"
	}
}

// governorByName resolves a Config.Governor value.
func governorByName(name string) (cpu.Governor, error) {
	switch name {
	case "", "schedutil":
		return cpu.NewSchedutil(), nil
	case "performance":
		return cpu.Performance{}, nil
	case "powersave":
		return cpu.Powersave{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown governor %q", name)
	}
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func hashName(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// frameTimeMS converts a frame rate to per-frame milliseconds (0 when idle).
func frameTimeMS(fps float64) float64 {
	if fps <= 0 {
		return 0
	}
	return 1000 / fps
}
