package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentRunsAreIndependent hammers one engine from many goroutines
// (the shape CollectContext produces) and checks every concurrent result
// equals its sequential twin. Run under -race this is also the engine's
// shared-state audit: any mutation of engine or platform state across runs
// trips the detector.
func TestConcurrentRunsAreIndependent(t *testing.T) {
	eng := MustNew(Config{})
	w := tinyWorkload()

	want := make([]*Result, 4)
	for r := range want {
		res, err := eng.Run(w, r)
		if err != nil {
			t.Fatal(err)
		}
		want[r] = res
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				res, err := eng.Run(w, r)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want[r]) {
					errs <- errors.New("concurrent run differs from sequential run")
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRunAveragedWorkersDeterminism(t *testing.T) {
	eng := MustNew(Config{})
	w := tinyWorkload()
	seq, err := eng.RunAveraged(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := eng.RunAveragedContext(context.Background(), w, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers=%d: averaged result differs from sequential", workers)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	eng := MustNew(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, tinyWorkload(), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := eng.RunAveragedContext(ctx, tinyWorkload(), 3, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("averaged err = %v, want context.Canceled", err)
	}
}

func TestAverageResultsValidation(t *testing.T) {
	if _, err := AverageResults("x", nil); err == nil {
		t.Fatal("empty result list accepted")
	}
	if _, err := AverageResults("x", []*Result{nil}); err == nil {
		t.Fatal("missing run result accepted")
	}
}
