// The timing-model seam: every memory-occupancy and storage-service query
// the tick loop issues routes through a TimingModel, so the analytic
// in-process models can be swapped for an external co-simulated backend
// (internal/cosim) without the engine knowing the difference. The built-in
// default wraps the exact mem.Model/mem.Storage pair the loop used to call
// directly, so a nil Config.Timing is bit-identical to the pre-seam engine
// by construction.
package sim

import (
	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

// TimingModel answers the tick loop's memory and storage timing queries.
// One instance serves one run at a time (the engine pools instances the way
// it pools cache hierarchies); implementations need not be safe for
// concurrent use, but distinct instances from one TimingProvider must be.
type TimingModel interface {
	// Step advances the model by one tick: the memory model moves toward
	// the phase's target footprint and the storage model services the
	// phase's IO demand, both over dt seconds.
	Step(target mem.Footprint, io mem.IODemand, dt float64) (mem.Result, mem.IOResult, error)
	// MemStep advances only the memory model — the fast-forward span path,
	// where IO is frozen and tiled instead of stepped.
	MemStep(target mem.Footprint, dt float64) (mem.Result, error)
	// Reset restores the just-constructed state, so a pooled instance is
	// bit-identical to a fresh one.
	Reset() error
}

// TimingProvider mints TimingModel instances for an engine. Providers whose
// results are bit-identical to the in-process analytic models return "" from
// Fingerprint; any other identity string is folded into the checkpoint
// fingerprint so snapshots collected under different timing backends never
// silently resume each other.
type TimingProvider interface {
	// NewTimingModel builds one model instance for the platform's memory
	// and storage hardware. The engine calls it once per pooled model set.
	NewTimingModel(memHW soc.Memory, storHW soc.Storage) (TimingModel, error)
	// Fingerprint identifies the backend when (and only when) its replies
	// can differ from the in-process analytic models.
	Fingerprint() string
}

// TimingReporter is optionally implemented by TimingModel instances that
// want per-run health provenance: the engine reads the report at the end of
// each run (the window since the last Reset) into Result.TimingNotes /
// Result.TimingDegraded.
type TimingReporter interface {
	// TimingReport returns the notes accumulated since the last Reset and
	// whether the backend degraded to its fallback path during the window.
	TimingReport() (notes []string, degraded bool)
}

// analyticTiming is the built-in TimingModel: the exact mem.Model /
// mem.Storage pair the tick loop called before the seam existed.
type analyticTiming struct {
	mem *mem.Model
	io  *mem.Storage
}

func newAnalyticTiming(memHW soc.Memory, storHW soc.Storage) *analyticTiming {
	return &analyticTiming{mem: mem.NewModel(memHW), io: mem.NewStorage(storHW)}
}

func (t *analyticTiming) Step(target mem.Footprint, io mem.IODemand, dt float64) (mem.Result, mem.IOResult, error) {
	return t.mem.Step(target, dt), t.io.Step(io, dt), nil
}

func (t *analyticTiming) MemStep(target mem.Footprint, dt float64) (mem.Result, error) {
	return t.mem.Step(target, dt), nil
}

func (t *analyticTiming) Reset() error {
	t.mem.Reset() // the storage model is stateless
	return nil
}
