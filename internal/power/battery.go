package power

import "fmt"

// Battery estimates battery drain from the power model's output — the
// user-facing quantity PCMark's battery-life test reports. The model is a
// nominal-capacity energy budget with a conversion/regulator efficiency;
// display power is accounted separately because the panel, not the SoC,
// dominates many mobile scenarios.
type Battery struct {
	// CapacityWh is the battery's nominal energy (a 4500 mAh pack at
	// 3.85 V is ~17.3 Wh).
	CapacityWh float64
	// Efficiency is the regulator/PMIC conversion efficiency (0..1].
	Efficiency float64
	// DisplayW is the panel's power draw while the screen is on.
	DisplayW float64
}

// DefaultBattery returns a flagship-class 4500 mAh pack with a Full-HD
// panel.
func DefaultBattery() Battery {
	return Battery{CapacityWh: 17.3, Efficiency: 0.9, DisplayW: 1.1}
}

// Validate checks the battery parameters.
func (b Battery) Validate() error {
	if b.CapacityWh <= 0 {
		return fmt.Errorf("power: non-positive battery capacity")
	}
	if b.Efficiency <= 0 || b.Efficiency > 1 {
		return fmt.Errorf("power: efficiency %g outside (0,1]", b.Efficiency)
	}
	if b.DisplayW < 0 {
		return fmt.Errorf("power: negative display power")
	}
	return nil
}

// DrainPercent returns how much of the battery a workload consumes, given
// the SoC energy it used and its runtime (for the display's share).
func (b Battery) DrainPercent(socEnergyJ, runtimeSec float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if socEnergyJ < 0 || runtimeSec < 0 {
		return 0, fmt.Errorf("power: negative energy or runtime")
	}
	totalJ := (socEnergyJ + b.DisplayW*runtimeSec) / b.Efficiency
	capacityJ := b.CapacityWh * 3600
	return totalJ / capacityJ * 100, nil
}

// RuntimeHours estimates how long the battery would sustain a workload
// drawing the given average SoC power with the screen on.
func (b Battery) RuntimeHours(avgSoCWatts float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if avgSoCWatts < 0 {
		return 0, fmt.Errorf("power: negative power")
	}
	draw := (avgSoCWatts + b.DisplayW) / b.Efficiency
	if draw == 0 {
		return 0, fmt.Errorf("power: zero draw")
	}
	return b.CapacityWh / draw, nil
}
