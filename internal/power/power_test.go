package power

import (
	"math"
	"testing"
	"testing/quick"

	"mobilebench/internal/soc"
)

func fullLoadInput(dt float64) Input {
	p := soc.Snapdragon888HDK()
	var in Input
	for _, k := range soc.Clusters() {
		in.Clusters[k] = ClusterInput{
			FreqHz:    p.Clusters[k].MaxFreqHz,
			Util:      1,
			MaxFreqHz: p.Clusters[k].MaxFreqHz,
			Cores:     p.Clusters[k].NumCores,
		}
	}
	in.GPULoad = 1
	in.AIELoad = 1
	in.DRAMBytes = 5e9 * dt
	in.StorageUtil = 1
	in.DTSec = dt
	return in
}

func idleInput(dt float64) Input {
	p := soc.Snapdragon888HDK()
	var in Input
	for _, k := range soc.Clusters() {
		in.Clusters[k] = ClusterInput{
			FreqHz:    p.Clusters[k].MinFreqHz,
			Util:      0,
			MaxFreqHz: p.Clusters[k].MaxFreqHz,
			Cores:     p.Clusters[k].NumCores,
		}
	}
	in.DTSec = dt
	return in
}

func TestDefaultCoefficientsValid(t *testing.T) {
	if err := DefaultCoefficients().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	c := DefaultCoefficients()
	c.Cluster[0].StaticW = -1
	if err := c.Validate(); err == nil {
		t.Error("negative leakage accepted")
	}
	c = DefaultCoefficients()
	c.StorageActiveW = c.StorageIdleW - 1
	if err := c.Validate(); err == nil {
		t.Error("inverted storage powers accepted")
	}
	c = DefaultCoefficients()
	c.GPUDynamicW = -1
	if err := c.Validate(); err == nil {
		t.Error("negative GPU power accepted")
	}
}

func TestFullLoadEnvelope(t *testing.T) {
	// A Snapdragon-class SoC under everything-at-once load draws on the
	// order of 8-14 W (a level it cannot sustain thermally).
	m := NewModel(DefaultCoefficients())
	b := m.Step(fullLoadInput(0.1))
	if total := b.TotalW(); total < 7 || total > 16 {
		t.Fatalf("full-load power %.1f W outside the plausible envelope", total)
	}
	// CPU alone: ~4-6 W.
	if cpu := b.CPUW(); cpu < 3 || cpu > 7 {
		t.Fatalf("full-load CPU power %.1f W implausible", cpu)
	}
}

func TestIdleEnvelope(t *testing.T) {
	m := NewModel(DefaultCoefficients())
	b := m.Step(idleInput(0.1))
	if total := b.TotalW(); total < 0.3 || total > 1.5 {
		t.Fatalf("idle power %.2f W outside the plausible envelope", total)
	}
}

func TestLoadMonotonicity(t *testing.T) {
	m := NewModel(DefaultCoefficients())
	idle := m.Step(idleInput(0.1)).TotalW()
	full := m.Step(fullLoadInput(0.1)).TotalW()
	if full <= idle {
		t.Fatal("full load should out-draw idle")
	}
}

func TestVoltageScalingSuperlinear(t *testing.T) {
	// Power at full frequency must exceed linear scaling from half
	// frequency (the V^2 term).
	p := soc.Snapdragon888HDK()
	mk := func(freqFrac float64) float64 {
		var in Input
		in.Clusters[soc.Big] = ClusterInput{
			FreqHz:    p.Clusters[soc.Big].MaxFreqHz * freqFrac,
			Util:      1,
			MaxFreqHz: p.Clusters[soc.Big].MaxFreqHz,
			Cores:     1,
		}
		in.DTSec = 0.1
		m := NewModel(DefaultCoefficients())
		b := m.Step(in)
		return b.Cluster[soc.Big] - DefaultCoefficients().Cluster[soc.Big].StaticW
	}
	half, full := mk(0.5), mk(1.0)
	if full <= 2*half {
		t.Fatalf("dynamic power not superlinear in frequency: full %.2f vs half %.2f", full, half)
	}
}

func TestBigCoreOutdrawsLittle(t *testing.T) {
	m := NewModel(DefaultCoefficients())
	b := m.Step(fullLoadInput(0.1))
	perBig := b.Cluster[soc.Big] / 1
	perLittle := b.Cluster[soc.Little] / 4
	if perBig <= perLittle {
		t.Fatalf("big core (%.2f W) should out-draw a little core (%.2f W)", perBig, perLittle)
	}
}

func TestEnergyAccumulation(t *testing.T) {
	m := NewModel(DefaultCoefficients())
	for i := 0; i < 10; i++ {
		m.Step(fullLoadInput(0.1))
	}
	if m.EnergyJ() <= 0 {
		t.Fatal("no energy accumulated")
	}
	want := m.AveragePowerW() * 1.0 // 10 ticks x 0.1 s
	if math.Abs(m.EnergyJ()-want) > 1e-9 {
		t.Fatalf("energy %.3f J inconsistent with average power %.3f W", m.EnergyJ(), m.AveragePowerW())
	}
	byComp := m.EnergyByComponent()
	sum := byComp.TotalW() // fields hold joules here; TotalW sums them
	if math.Abs(sum-m.EnergyJ()) > 1e-9 {
		t.Fatalf("component energies %.3f do not sum to total %.3f", sum, m.EnergyJ())
	}
	m.Reset()
	if m.EnergyJ() != 0 || m.AveragePowerW() != 0 {
		t.Fatal("reset did not clear accumulators")
	}
}

func TestDRAMEnergyScalesWithTraffic(t *testing.T) {
	m := NewModel(DefaultCoefficients())
	quiet := idleInput(0.1)
	busy := idleInput(0.1)
	busy.DRAMBytes = 2e9 * 0.1
	if m.Step(busy).DRAM <= m.Step(quiet).DRAM {
		t.Fatal("DRAM power should scale with traffic")
	}
}

func TestQuickNonNegative(t *testing.T) {
	p := soc.Snapdragon888HDK()
	m := NewModel(DefaultCoefficients())
	f := func(freqRaw, utilRaw, gpuRaw uint8) bool {
		var in Input
		for _, k := range soc.Clusters() {
			in.Clusters[k] = ClusterInput{
				FreqHz:    p.Clusters[k].MaxFreqHz * float64(freqRaw) / 255,
				Util:      float64(utilRaw) / 255,
				MaxFreqHz: p.Clusters[k].MaxFreqHz,
				Cores:     p.Clusters[k].NumCores,
			}
		}
		in.GPULoad = float64(gpuRaw) / 255
		in.DTSec = 0.1
		b := m.Step(in)
		return b.TotalW() >= 0 && b.CPUW() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
