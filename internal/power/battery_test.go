package power

import (
	"math"
	"testing"
)

func TestBatteryValidate(t *testing.T) {
	if err := DefaultBattery().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Battery{
		{CapacityWh: 0, Efficiency: 0.9},
		{CapacityWh: 17, Efficiency: 0},
		{CapacityWh: 17, Efficiency: 1.5},
		{CapacityWh: 17, Efficiency: 0.9, DisplayW: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDrainPercent(t *testing.T) {
	b := Battery{CapacityWh: 10, Efficiency: 1, DisplayW: 0}
	// 3600 J = 1 Wh = 10% of a 10 Wh pack.
	got, err := b.DrainPercent(3600, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("drain = %g%%, want 10%%", got)
	}
	// Display and efficiency raise the drain.
	b = Battery{CapacityWh: 10, Efficiency: 0.5, DisplayW: 1}
	got2, _ := b.DrainPercent(3600, 3600) // +1 Wh display, halved efficiency
	if got2 <= got {
		t.Fatal("losses should raise drain")
	}
	if _, err := b.DrainPercent(-1, 0); err == nil {
		t.Fatal("negative energy accepted")
	}
}

func TestRuntimeHours(t *testing.T) {
	b := Battery{CapacityWh: 10, Efficiency: 1, DisplayW: 0}
	h, err := b.RuntimeHours(2)
	if err != nil || math.Abs(h-5) > 1e-9 {
		t.Fatalf("runtime = %g h, err %v, want 5 h", h, err)
	}
	// A realistic gaming scenario: ~6 W SoC + panel on a flagship pack
	// lands in the 2-3 hour range.
	h, err = DefaultBattery().RuntimeHours(6)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1.5 || h > 3.5 {
		t.Fatalf("gaming battery life %g h implausible", h)
	}
	if _, err := DefaultBattery().RuntimeHours(-1); err == nil {
		t.Fatal("negative power accepted")
	}
}
