// Package power models per-component power draw and accumulated energy for
// the simulated SoC.
//
// The paper lists power as an explicit limitation of its methodology
// ("conducting power readings necessitates external hardware, which is not
// within the scope of our current capabilities"); this package is the
// repository's beyond-the-paper extension filling that gap. The models are
// the standard first-order forms used in architecture studies:
//
//   - CPU dynamic power per cluster: P = C * V^2 * f * util, with the
//     voltage inferred from the operating point (V roughly linear in f
//     across a mobile DVFS range), plus per-cluster static leakage while
//     the cluster is powered.
//   - GPU and AIE: capacitance-scaled dynamic power from load, plus
//     leakage.
//   - DRAM: background power plus per-byte access energy.
//   - Storage: idle plus active power scaled by utilization.
//
// Coefficients are calibrated to public Snapdragon-class figures: roughly
// 4-5 W sustained SoC power under full CPU load, ~5 W GPU-dominated load in
// heavy games, and hundreds of milliwatts at idle.
package power

import (
	"fmt"

	"mobilebench/internal/soc"
)

// ClusterCoeff holds one CPU cluster's power coefficients.
type ClusterCoeff struct {
	// DynamicNsPerCore is the effective switched capacitance in
	// nanojoules per cycle per core at nominal voltage (P = k * f *
	// util * cores after voltage scaling).
	DynamicNsPerCore float64
	// StaticW is the leakage power of the whole cluster when powered.
	StaticW float64
}

// Coefficients parameterize the whole-SoC power model.
type Coefficients struct {
	Cluster [soc.NumClusters]ClusterCoeff
	// GPUDynamicW is GPU power at full load and maximum frequency.
	GPUDynamicW float64
	// GPUStaticW is GPU leakage while powered.
	GPUStaticW float64
	// AIEDynamicW is AIE power at full load.
	AIEDynamicW float64
	// AIEStaticW is AIE leakage.
	AIEStaticW float64
	// DRAMBackgroundW is DRAM standby/refresh power.
	DRAMBackgroundW float64
	// DRAMEnergyPerGB is access energy in joules per gigabyte moved.
	DRAMEnergyPerGB float64
	// StorageIdleW and StorageActiveW bound the flash subsystem.
	StorageIdleW, StorageActiveW float64
	// SoCBaseW is the always-on rest of the SoC (interconnect, sensors,
	// display pipeline excluding the panel).
	SoCBaseW float64
}

// DefaultCoefficients returns values calibrated to Snapdragon-class
// publicly reported power envelopes.
func DefaultCoefficients() Coefficients {
	var c Coefficients
	// Big core: ~2 W at 3 GHz full tilt; Mid: ~0.9 W/core at 2.42 GHz;
	// Little: ~0.25 W/core at 1.8 GHz.
	c.Cluster[soc.Big] = ClusterCoeff{DynamicNsPerCore: 0.667, StaticW: 0.08}
	c.Cluster[soc.Mid] = ClusterCoeff{DynamicNsPerCore: 0.372, StaticW: 0.10}
	c.Cluster[soc.Little] = ClusterCoeff{DynamicNsPerCore: 0.139, StaticW: 0.06}
	c.GPUDynamicW = 4.5
	c.GPUStaticW = 0.12
	c.AIEDynamicW = 1.8
	c.AIEStaticW = 0.05
	c.DRAMBackgroundW = 0.18
	c.DRAMEnergyPerGB = 0.06
	c.StorageIdleW = 0.02
	c.StorageActiveW = 1.1
	c.SoCBaseW = 0.25
	return c
}

// ClusterInput is one cluster's state for a tick.
type ClusterInput struct {
	// FreqHz is the cluster frequency.
	FreqHz float64
	// Util is per-core utilization (0..1).
	Util float64
	// MaxFreqHz is the cluster's top operating point (for voltage scaling).
	MaxFreqHz float64
	// Cores is the cluster's core count.
	Cores int
}

// Input is the SoC state for one tick.
type Input struct {
	Clusters [soc.NumClusters]ClusterInput
	// GPULoad is frequency x utilization (0..1).
	GPULoad float64
	// AIELoad is frequency x utilization (0..1).
	AIELoad float64
	// DRAMBytes is data moved to/from DRAM this tick.
	DRAMBytes float64
	// StorageUtil is storage utilization (0..1).
	StorageUtil float64
	// DTSec is the tick length.
	DTSec float64
}

// Breakdown is per-component power for one tick, in watts.
type Breakdown struct {
	Cluster [soc.NumClusters]float64
	GPU     float64
	AIE     float64
	DRAM    float64
	Storage float64
	Base    float64
}

// TotalW returns the summed SoC power.
func (b Breakdown) TotalW() float64 {
	t := b.GPU + b.AIE + b.DRAM + b.Storage + b.Base
	for _, c := range b.Cluster {
		t += c
	}
	return t
}

// CPUW returns the summed CPU-cluster power.
func (b Breakdown) CPUW() float64 {
	t := 0.0
	for _, c := range b.Cluster {
		t += c
	}
	return t
}

// Model accumulates energy over a run.
type Model struct {
	coeff Coefficients
	// energyJ accumulates total energy.
	energyJ float64
	// byComponent accumulates per-component energy.
	byComponent Breakdown
	// elapsed accumulates simulated time.
	elapsed float64
}

// NewModel creates a power model.
func NewModel(coeff Coefficients) *Model { return &Model{coeff: coeff} }

// voltageScale approximates V^2/Vnom^2 from the frequency ratio: mobile
// DVFS curves run roughly V = 0.6 + 0.4*(f/fmax) of nominal.
func voltageScale(freqHz, maxHz float64) float64 {
	if maxHz <= 0 {
		return 1
	}
	r := freqHz / maxHz
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	v := 0.6 + 0.4*r
	return v * v
}

// Step computes the tick's power breakdown and accumulates energy.
func (m *Model) Step(in Input) Breakdown {
	var b Breakdown
	for k := range in.Clusters {
		ci := in.Clusters[k]
		if ci.Cores == 0 {
			continue
		}
		coeff := m.coeff.Cluster[k]
		dyn := coeff.DynamicNsPerCore * 1e-9 * ci.FreqHz * ci.Util *
			float64(ci.Cores) * voltageScale(ci.FreqHz, ci.MaxFreqHz)
		b.Cluster[k] = dyn + coeff.StaticW
	}
	b.GPU = m.coeff.GPUStaticW + m.coeff.GPUDynamicW*clamp01(in.GPULoad)
	b.AIE = m.coeff.AIEStaticW + m.coeff.AIEDynamicW*clamp01(in.AIELoad)
	dramActive := 0.0
	if in.DTSec > 0 {
		dramActive = m.coeff.DRAMEnergyPerGB * (in.DRAMBytes / 1e9) / in.DTSec
	}
	b.DRAM = m.coeff.DRAMBackgroundW + dramActive
	b.Storage = m.coeff.StorageIdleW +
		(m.coeff.StorageActiveW-m.coeff.StorageIdleW)*clamp01(in.StorageUtil)
	b.Base = m.coeff.SoCBaseW

	dt := in.DTSec
	m.energyJ += b.TotalW() * dt
	for k := range b.Cluster {
		m.byComponent.Cluster[k] += b.Cluster[k] * dt
	}
	m.byComponent.GPU += b.GPU * dt
	m.byComponent.AIE += b.AIE * dt
	m.byComponent.DRAM += b.DRAM * dt
	m.byComponent.Storage += b.Storage * dt
	m.byComponent.Base += b.Base * dt
	m.elapsed += dt
	return b
}

// EnergyJ returns total accumulated energy in joules.
func (m *Model) EnergyJ() float64 { return m.energyJ }

// EnergyByComponent returns accumulated per-component energy (joules in the
// Breakdown fields).
func (m *Model) EnergyByComponent() Breakdown { return m.byComponent }

// AveragePowerW returns mean power over the accumulated time.
func (m *Model) AveragePowerW() float64 {
	if m.elapsed == 0 {
		return 0
	}
	return m.energyJ / m.elapsed
}

// Reset clears accumulated energy.
func (m *Model) Reset() {
	m.energyJ = 0
	m.byComponent = Breakdown{}
	m.elapsed = 0
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Validate sanity-checks the coefficients.
func (c Coefficients) Validate() error {
	for k, cc := range c.Cluster {
		if cc.DynamicNsPerCore < 0 || cc.StaticW < 0 {
			return fmt.Errorf("power: cluster %d has negative coefficients", k)
		}
	}
	if c.GPUDynamicW < 0 || c.AIEDynamicW < 0 || c.DRAMEnergyPerGB < 0 {
		return fmt.Errorf("power: negative component coefficients")
	}
	if c.StorageActiveW < c.StorageIdleW {
		return fmt.Errorf("power: storage active power below idle")
	}
	return nil
}
