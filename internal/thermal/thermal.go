// Package thermal models die temperature with a lumped RC network and an
// optional thermal throttle.
//
// The paper's second stated limitation is thermals ("the absence of a
// battery and casing in the development board limits the representativeness
// of thermal readings"); this package is the repository's beyond-the-paper
// extension. Each monitored component (CPU clusters, GPU, the rest of the
// SoC) is a thermal node with a heat capacity, coupled to a skin node that
// leaks to ambient — the classic two-stage RC compact model used in mobile
// thermal studies. An optional throttle reports a frequency cap when a node
// crosses its trip point, which the simulator can feed back into DVFS.
package thermal

import "fmt"

// Node identifies a monitored thermal node.
type Node int

// Monitored nodes.
const (
	NodeCPU Node = iota
	NodeGPU
	NodeSoC
	NumNodes
)

// String returns the node name.
func (n Node) String() string {
	switch n {
	case NodeCPU:
		return "cpu"
	case NodeGPU:
		return "gpu"
	case NodeSoC:
		return "soc"
	default:
		return fmt.Sprintf("node(%d)", int(n))
	}
}

// Config parameterizes the RC network.
type Config struct {
	// AmbientC is the ambient temperature in Celsius.
	AmbientC float64
	// CapacityJPerC is each node's heat capacity (joules per degree).
	CapacityJPerC [NumNodes]float64
	// NodeToSkinW is each node's conductance to the skin (watts per
	// degree).
	NodeToSkinW [NumNodes]float64
	// SkinCapacityJPerC is the skin/board heat capacity.
	SkinCapacityJPerC float64
	// SkinToAmbientW is the skin-to-ambient conductance.
	SkinToAmbientW float64
	// TripC is each node's throttle trip point; 0 disables throttling for
	// the node.
	TripC [NumNodes]float64
	// HysteresisC is how far below the trip point a node must cool before
	// its throttle releases.
	HysteresisC float64
}

// DefaultConfig returns constants representative of a development board
// without a casing (the paper's platform): generous heat spreading and
// high trip points.
func DefaultConfig() Config {
	var c Config
	c.AmbientC = 25
	c.CapacityJPerC = [NumNodes]float64{4, 5, 15}
	c.NodeToSkinW = [NumNodes]float64{0.18, 0.20, 0.6}
	c.SkinCapacityJPerC = 80
	c.SkinToAmbientW = 0.45
	c.TripC = [NumNodes]float64{95, 95, 0}
	c.HysteresisC = 5
	return c
}

// State is the thermal reading for one tick.
type State struct {
	// NodeC is each node's temperature in Celsius.
	NodeC [NumNodes]float64
	// SkinC is the skin temperature.
	SkinC float64
	// Throttled reports nodes currently above their trip point (with
	// hysteresis).
	Throttled [NumNodes]bool
}

// Model integrates the RC network.
type Model struct {
	cfg       Config
	nodeC     [NumNodes]float64
	skinC     float64
	throttled [NumNodes]bool
}

// NewModel creates a model at thermal equilibrium with ambient.
func NewModel(cfg Config) *Model {
	m := &Model{cfg: cfg, skinC: cfg.AmbientC}
	for i := range m.nodeC {
		m.nodeC[i] = cfg.AmbientC
	}
	return m
}

// Step integrates dt seconds with the given per-node power input (watts)
// and returns the new state.
func (m *Model) Step(powerW [NumNodes]float64, dt float64) State {
	// Node dynamics: C dT/dt = P - G*(T - Tskin).
	heatToSkin := 0.0
	for i := range m.nodeC {
		g := m.cfg.NodeToSkinW[i]
		flow := g * (m.nodeC[i] - m.skinC)
		heatToSkin += flow
		cap := m.cfg.CapacityJPerC[i]
		if cap > 0 {
			m.nodeC[i] += (powerW[i] - flow) * dt / cap
		}
	}
	// Skin dynamics: C dT/dt = sum(inflow) - G*(T - Tamb).
	if m.cfg.SkinCapacityJPerC > 0 {
		out := m.cfg.SkinToAmbientW * (m.skinC - m.cfg.AmbientC)
		m.skinC += (heatToSkin - out) * dt / m.cfg.SkinCapacityJPerC
	}
	// Throttle with hysteresis.
	for i := range m.nodeC {
		trip := m.cfg.TripC[i]
		if trip <= 0 {
			continue
		}
		if m.nodeC[i] >= trip {
			m.throttled[i] = true
		} else if m.nodeC[i] < trip-m.cfg.HysteresisC {
			m.throttled[i] = false
		}
	}
	return m.State()
}

// State returns the current reading without advancing time.
func (m *Model) State() State {
	return State{NodeC: m.nodeC, SkinC: m.skinC, Throttled: m.throttled}
}

// FreqCapFactor returns the DVFS cap for a node: 1 when unthrottled, or a
// reduced factor proportional to how far past the trip point it is.
func (m *Model) FreqCapFactor(n Node) float64 {
	if !m.throttled[n] {
		return 1
	}
	over := m.nodeC[n] - m.cfg.TripC[n]
	cap := 1 - 0.05*(over+1)
	if cap < 0.5 {
		cap = 0.5
	}
	return cap
}

// Reset returns the network to ambient equilibrium.
func (m *Model) Reset() {
	for i := range m.nodeC {
		m.nodeC[i] = m.cfg.AmbientC
		m.throttled[i] = false
	}
	m.skinC = m.cfg.AmbientC
}
