package thermal

import (
	"math"
	"testing"
)

func TestStartsAtAmbient(t *testing.T) {
	m := NewModel(DefaultConfig())
	s := m.State()
	for i := range s.NodeC {
		if s.NodeC[i] != 25 {
			t.Fatalf("node %d starts at %g, want ambient", i, s.NodeC[i])
		}
	}
	if s.SkinC != 25 {
		t.Fatal("skin not at ambient")
	}
}

func TestHeatingAndCooling(t *testing.T) {
	m := NewModel(DefaultConfig())
	var heat [NumNodes]float64
	heat[NodeCPU] = 5 // sustained 5 W
	var hot State
	for i := 0; i < 3000; i++ { // 5 minutes
		hot = m.Step(heat, 0.1)
	}
	if hot.NodeC[NodeCPU] <= 40 {
		t.Fatalf("5 W for 5 minutes only reached %.1f C", hot.NodeC[NodeCPU])
	}
	if hot.SkinC <= 25 {
		t.Fatal("skin did not warm")
	}
	// Cool down.
	var cold State
	for i := 0; i < 12000; i++ { // 20 minutes idle
		cold = m.Step([NumNodes]float64{}, 0.1)
	}
	if cold.NodeC[NodeCPU] >= hot.NodeC[NodeCPU] {
		t.Fatal("no cooling when idle")
	}
	if cold.NodeC[NodeCPU] > 30 {
		t.Fatalf("did not approach ambient: %.1f C", cold.NodeC[NodeCPU])
	}
}

func TestSteadyStateMatchesConductance(t *testing.T) {
	// At steady state, node temperature = ambient + P/Gskin + P/Gnode for a
	// single heated node.
	cfg := DefaultConfig()
	cfg.TripC = [NumNodes]float64{} // no throttling
	m := NewModel(cfg)
	var heat [NumNodes]float64
	heat[NodeGPU] = 2
	var s State
	for i := 0; i < 60000; i++ { // 100 minutes
		s = m.Step(heat, 0.1)
	}
	want := cfg.AmbientC + 2/cfg.SkinToAmbientW + 2/cfg.NodeToSkinW[NodeGPU]
	if math.Abs(s.NodeC[NodeGPU]-want) > 1 {
		t.Fatalf("steady state %.2f C, want %.2f C", s.NodeC[NodeGPU], want)
	}
}

func TestThrottleWithHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TripC[NodeCPU] = 50
	cfg.HysteresisC = 5
	m := NewModel(cfg)
	var heat [NumNodes]float64
	heat[NodeCPU] = 20
	for i := 0; i < 20000; i++ {
		s := m.Step(heat, 0.1)
		if s.Throttled[NodeCPU] {
			break
		}
	}
	if !m.State().Throttled[NodeCPU] {
		t.Fatal("20 W never tripped the 50 C throttle")
	}
	if m.FreqCapFactor(NodeCPU) >= 1 {
		t.Fatal("throttled node should cap frequency")
	}
	if m.FreqCapFactor(NodeCPU) < 0.5 {
		t.Fatal("cap floor violated")
	}
	// Cool slightly below trip: hysteresis keeps the throttle on.
	for m.State().NodeC[NodeCPU] > 48 {
		m.Step([NumNodes]float64{}, 0.1)
	}
	if !m.State().Throttled[NodeCPU] {
		t.Fatal("throttle released inside the hysteresis band")
	}
	// Cool past the band: throttle releases.
	for m.State().NodeC[NodeCPU] > 44 {
		m.Step([NumNodes]float64{}, 0.1)
	}
	if m.State().Throttled[NodeCPU] {
		t.Fatal("throttle never released")
	}
	if m.FreqCapFactor(NodeCPU) != 1 {
		t.Fatal("released node should not cap frequency")
	}
}

func TestTripDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TripC = [NumNodes]float64{}
	m := NewModel(cfg)
	var heat [NumNodes]float64
	heat[NodeCPU] = 100
	for i := 0; i < 5000; i++ {
		m.Step(heat, 0.1)
	}
	if m.State().Throttled[NodeCPU] {
		t.Fatal("disabled trip point throttled")
	}
}

func TestReset(t *testing.T) {
	m := NewModel(DefaultConfig())
	var heat [NumNodes]float64
	heat[NodeCPU] = 10
	for i := 0; i < 1000; i++ {
		m.Step(heat, 0.1)
	}
	m.Reset()
	if m.State().NodeC[NodeCPU] != 25 || m.State().SkinC != 25 {
		t.Fatal("reset did not restore ambient")
	}
}

func TestNodeNames(t *testing.T) {
	if NodeCPU.String() != "cpu" || NodeGPU.String() != "gpu" || NodeSoC.String() != "soc" {
		t.Fatal("node names wrong")
	}
	if Node(9).String() != "node(9)" {
		t.Fatal("unknown node should stringify defensively")
	}
}
