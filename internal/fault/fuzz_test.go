package fault_test

import (
	"strings"
	"testing"

	"mobilebench/internal/fault"
)

// FuzzParse fuzzes the -inject spec parser. Parse sits directly behind a
// CLI flag, so arbitrary input must never panic, a rejected spec must not
// leak a half-built injector, and an accepted spec must yield a fully
// deterministic injector: two Parses of the same spec plan identical
// faults for every (unit, run, attempt).
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("crash=0.2,abort=0.1,hang=0.1,panic=0.05,drop=0.1,nan=0.1,skew=0.1,seed=7,hang_sec=0.5,clean_after=3")
	f.Add("crash=0.5,seed=9")
	f.Add("nan=1.5")       // out of range
	f.Add("bogus=1")       // unknown key
	f.Add("crash")         // not key=value
	f.Add(" crash = 0.1 ") // whitespace tolerance
	f.Add("crash=0.1,,nan=0.2,")
	f.Add("seed=18446744073709551615")
	f.Add("seed=-1")
	f.Add("hang_sec=1e308,hang=1")
	f.Fuzz(func(t *testing.T, spec string) {
		inj, err := fault.Parse(spec)
		if err != nil {
			if inj != nil {
				t.Fatal("Parse returned both an injector and an error")
			}
			return
		}
		if strings.TrimSpace(spec) == "" {
			if inj != nil {
				t.Fatal("empty spec must parse to a nil injector")
			}
			return
		}
		if inj == nil {
			// A spec of only separators ("," / " , ") also means no faults.
			return
		}
		inj2, err := fault.Parse(spec)
		if err != nil {
			t.Fatalf("second Parse of an accepted spec failed: %v", err)
		}
		for _, unit := range []string{"", "geekbench", "pcmark"} {
			for run := 0; run < 3; run++ {
				for attempt := 0; attempt < 3; attempt++ {
					if inj.PlanFor(unit, run, attempt) != inj2.PlanFor(unit, run, attempt) {
						t.Fatalf("PlanFor(%q,%d,%d) differs across two Parses of %q",
							unit, run, attempt, spec)
					}
				}
			}
		}
		if inj.Config() != inj2.Config() {
			t.Fatalf("normalized Config differs across two Parses of %q", spec)
		}
	})
}
