// Cosim fault kinds: deliberate misbehavior for an external timing-model
// child (cmd/mbtiming -chaos), driving the supervisor's full failure
// surface — crash (kill), hang, garbage frames, slow replies and protocol
// version skew. Unlike the probabilistic run-level Injector, these faults
// are scheduled by batch ordinal: the chaos tests need "die on exactly the
// Nth batch" precision to assert recovery converges bit-identically.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// CosimConfig schedules child-side faults by 1-based batch ordinal. The
// zero value injects nothing.
type CosimConfig struct {
	// KillBatch exits the process (status 3) before answering batch N.
	KillBatch int
	// KillEvery exits before every Nth batch (counted per process
	// lifetime) — the repeated-crash pattern that exhausts strikes.
	KillEvery int
	// HangBatch sleeps HangSec before answering batch N.
	HangBatch int
	// HangSec is the hang length in seconds (0 = 3600, an effective
	// forever against the supervisor's per-query deadline).
	HangSec float64
	// GarbageBatch answers batch N with a non-protocol line.
	GarbageBatch int
	// SlowBatch delays batch N by SlowSec before answering correctly.
	SlowBatch int
	// SlowSec is the slow-reply delay in seconds.
	SlowSec float64
	// SkewVersion makes the welcome claim an alien protocol version.
	SkewVersion bool
	// SkewAfterSpawns skews the welcome only from spawn N+1 on (requires
	// SpawnFile to count spawns across processes): a child that was fine,
	// crashed, and came back incompatible — e.g. restarted into an
	// upgraded binary.
	SkewAfterSpawns int
	// SpawnFile persists the spawn count across child processes.
	SpawnFile string
}

// Enabled reports whether any cosim fault is configured.
func (c CosimConfig) Enabled() bool {
	return c != CosimConfig{}
}

// CosimPlan is the fault decision for one batch.
type CosimPlan struct {
	// Kill exits the process before answering.
	Kill bool
	// Hang sleeps for HangSec before answering.
	Hang bool
	// HangSec is the hang length in seconds.
	HangSec float64
	// Garbage answers with a non-protocol line.
	Garbage bool
	// SlowSec delays the (correct) answer by this many seconds.
	SlowSec float64
}

// PlanForBatch returns the fault decision for the n-th batch (1-based) of
// the current process. Zero-valued schedule fields never fire — 0 means
// disabled, not batch zero.
func (c CosimConfig) PlanForBatch(n int) CosimPlan {
	var p CosimPlan
	if n < 1 {
		return p
	}
	if (c.KillBatch > 0 && n == c.KillBatch) || (c.KillEvery > 0 && n%c.KillEvery == 0) {
		p.Kill = true
	}
	if c.HangBatch > 0 && n == c.HangBatch {
		p.Hang = true
		p.HangSec = c.HangSec
		if p.HangSec <= 0 {
			p.HangSec = 3600
		}
	}
	if c.GarbageBatch > 0 && n == c.GarbageBatch {
		p.Garbage = true
	}
	if c.SlowBatch > 0 && n == c.SlowBatch {
		p.SlowSec = c.SlowSec
	}
	return p
}

// ParseCosim parses a cosim chaos spec: comma-separated key=value pairs,
// e.g.
//
//	kill_batch=3
//	kill_every=2,spawn_file=/tmp/spawns
//	hang_batch=5,hang_sec=10
//	skew_after_spawns=1,spawn_file=/tmp/spawns
//
// Keys: kill_batch, kill_every, hang_batch, hang_sec, garbage_batch,
// slow_batch, slow_sec, skew_version, skew_after_spawns, spawn_file.
// Unknown keys are errors. The empty spec returns the zero config.
func ParseCosim(spec string) (CosimConfig, error) {
	var cfg CosimConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: cosim spec entry %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		bad := func(err error) (CosimConfig, error) {
			return cfg, fmt.Errorf("fault: bad cosim %s=%q: %w", key, val, err)
		}
		switch key {
		case "kill_batch", "kill_every", "hang_batch", "garbage_batch", "slow_batch", "skew_after_spawns":
			n, err := strconv.Atoi(val)
			if err != nil {
				return bad(err)
			}
			if n < 0 {
				return cfg, fmt.Errorf("fault: cosim %s must be >= 0, got %d", key, n)
			}
			switch key {
			case "kill_batch":
				cfg.KillBatch = n
			case "kill_every":
				cfg.KillEvery = n
			case "hang_batch":
				cfg.HangBatch = n
			case "garbage_batch":
				cfg.GarbageBatch = n
			case "slow_batch":
				cfg.SlowBatch = n
			case "skew_after_spawns":
				cfg.SkewAfterSpawns = n
			}
		case "hang_sec", "slow_sec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return bad(err)
			}
			if key == "hang_sec" {
				cfg.HangSec = f
			} else {
				cfg.SlowSec = f
			}
		case "skew_version":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return bad(err)
			}
			cfg.SkewVersion = b
		case "spawn_file":
			cfg.SpawnFile = val
		default:
			return cfg, fmt.Errorf("fault: unknown cosim spec key %q", key)
		}
	}
	if cfg.SkewAfterSpawns > 0 && cfg.SpawnFile == "" {
		return cfg, fmt.Errorf("fault: cosim skew_after_spawns requires spawn_file to count spawns across processes")
	}
	return cfg, nil
}
