package fault

import "testing"

// TestParseCosim: the spec grammar round-trips into the config.
func TestParseCosim(t *testing.T) {
	cfg, err := ParseCosim(" kill_every=2, hang_batch=5, hang_sec=0.5, garbage_batch=3, slow_batch=4, slow_sec=0.25, skew_after_spawns=1, spawn_file=/tmp/s ")
	if err != nil {
		t.Fatalf("ParseCosim: %v", err)
	}
	want := CosimConfig{
		KillEvery: 2, HangBatch: 5, HangSec: 0.5, GarbageBatch: 3,
		SlowBatch: 4, SlowSec: 0.25, SkewAfterSpawns: 1, SpawnFile: "/tmp/s",
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("configured faults report disabled")
	}
	if c, err := ParseCosim(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	if c, err := ParseCosim("skew_version=true"); err != nil || !c.SkewVersion {
		t.Fatalf("skew_version: %+v, %v", c, err)
	}
}

// TestParseCosimRejects: malformed specs fail loudly.
func TestParseCosimRejects(t *testing.T) {
	for _, spec := range []string{
		"kill_batch",          // no value
		"kill_batch=x",        // not a number
		"kill_batch=-1",       // negative
		"hang_sec=zap",        // not a float
		"skew_version=maybe",  // not a bool
		"quux=1",              // unknown key
		"skew_after_spawns=1", // requires spawn_file
	} {
		if _, err := ParseCosim(spec); err == nil {
			t.Errorf("ParseCosim(%q) accepted", spec)
		}
	}
}

// TestPlanForBatch: faults land on exactly their scheduled batches.
func TestPlanForBatch(t *testing.T) {
	cfg := CosimConfig{KillEvery: 3, HangBatch: 2, GarbageBatch: 4, SlowBatch: 5, SlowSec: 0.1}
	for n, want := range map[int]CosimPlan{
		1: {},
		2: {Hang: true, HangSec: 3600},
		3: {Kill: true},
		4: {Garbage: true},
		5: {SlowSec: 0.1},
		6: {Kill: true},
	} {
		if got := cfg.PlanForBatch(n); got != want {
			t.Errorf("PlanForBatch(%d) = %+v, want %+v", n, got, want)
		}
	}
	// The zero config never injects: batch 0 quirks must not trigger
	// zero-valued schedule fields.
	var zero CosimConfig
	for n := 0; n < 5; n++ {
		if got := zero.PlanForBatch(n); got != (CosimPlan{}) {
			t.Errorf("zero config injects at batch %d: %+v", n, got)
		}
	}
	one := CosimConfig{KillBatch: 1}
	if !one.PlanForBatch(1).Kill || one.PlanForBatch(2).Kill {
		t.Error("kill_batch=1 schedule wrong")
	}
}
