// Package fault is the deterministic fault-injection subsystem used to
// harden and chaos-test the collection pipeline.
//
// The paper's measurement substrate is inherently flaky: Snapdragon
// Profiler sessions drop counter samples, runs hang or abort on thermal
// events, and every benchmark is averaged over three runs precisely
// because single runs cannot be trusted. The simulator has none of those
// failure modes by construction, so this package injects them on purpose —
// reproducibly. An Injector derives every decision from a pure function of
// (unit, run, attempt) and its own seed, exactly like the simulator's
// per-(unit, run) RNG split, so a chaos run is bit-for-bit repeatable for
// any worker count and a retried attempt is a fresh, independent draw.
//
// Fault modes:
//
//   - crash: the run fails immediately (profiler session died at start).
//   - abort: the run errors partway through (thermal shutdown mid-run).
//   - hang: the run stalls mid-run for HangSec wall-clock seconds; with a
//     per-run timeout configured upstream this manifests as a deadline
//     error, without one it is merely a slow run.
//   - panic: the run panics mid-run (a worker bug); the collection layer
//     must convert this into an error instead of dying.
//   - drop: trailing counter samples of some series are dropped, leaving
//     a misaligned trace (Snapdragon Profiler's dropped-sample failure).
//   - nan: scattered samples of some series are replaced with NaN.
//   - skew: the whole run is scaled by a factor far outside run-to-run
//     jitter — a self-consistent but non-representative run, the case
//     MAD-based outlier rejection exists for.
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"mobilebench/internal/profiler"
	"mobilebench/internal/xrand"
)

// Mode identifies an injected fault class.
type Mode int

// Fault modes.
const (
	ModeNone Mode = iota
	ModeCrash
	ModeAbort
	ModeHang
	ModePanic
	ModeDrop
	ModeNaN
	ModeSkew
)

// String returns the spec-key name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeCrash:
		return "crash"
	case ModeAbort:
		return "abort"
	case ModeHang:
		return "hang"
	case ModePanic:
		return "panic"
	case ModeDrop:
		return "drop"
	case ModeNaN:
		return "nan"
	case ModeSkew:
		return "skew"
	default:
		return "none"
	}
}

// InjectedError is the error surfaced by crash and abort faults, so tests
// and provenance can tell injected failures from real ones.
type InjectedError struct {
	Mode    Mode
	Unit    string
	Run     int
	Attempt int
	// Frac is the run-progress fraction at which the fault fired (0 for
	// crashes).
	Frac float64
}

// Error implements error.
func (e *InjectedError) Error() string {
	if e.Frac > 0 {
		return fmt.Sprintf("fault: injected %s at %.0f%% of %s run %d attempt %d",
			e.Mode, e.Frac*100, e.Unit, e.Run, e.Attempt)
	}
	return fmt.Sprintf("fault: injected %s in %s run %d attempt %d",
		e.Mode, e.Unit, e.Run, e.Attempt)
}

// Config parameterizes an Injector. Each probability is the per-attempt
// chance of that fault mode firing; modes are drawn independently, and at
// most one "terminal" mode (crash/abort/hang/panic) fires per attempt.
type Config struct {
	// Seed drives every injection decision. Zero selects 888 (the
	// simulator's default root seed) so that "-inject crash=0.2" alone is
	// already reproducible.
	Seed uint64
	// Crash, Abort, Hang, Panic, Drop, NaN, Skew are per-attempt fault
	// probabilities in [0, 1].
	Crash, Abort, Hang, Panic, Drop, NaN, Skew float64
	// HangSec is how long an injected hang stalls the run (wall clock).
	// Zero selects 0.5 s.
	HangSec float64
	// CleanAfter guarantees recovery: attempts numbered >= CleanAfter are
	// never faulted, so a retry budget of CleanAfter extra attempts always
	// reaches a clean run. Zero selects 3; negative disables the guarantee
	// (every attempt may be faulted).
	CleanAfter int
}

func (c Config) normalize() Config {
	if c.Seed == 0 {
		c.Seed = 888
	}
	if c.HangSec == 0 {
		c.HangSec = 0.5
	}
	if c.CleanAfter == 0 {
		c.CleanAfter = 3
	}
	return c
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"crash", c.Crash}, {"abort", c.Abort}, {"hang", c.Hang},
		{"panic", c.Panic}, {"drop", c.Drop}, {"nan", c.NaN}, {"skew", c.Skew},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: probability %s=%v outside [0,1]", p.name, p.v)
		}
	}
	if c.HangSec < 0 || math.IsNaN(c.HangSec) || math.IsInf(c.HangSec, 0) {
		return fmt.Errorf("fault: hang_sec=%v invalid", c.HangSec)
	}
	return nil
}

// Plan is the injection decision for one (unit, run, attempt). The zero
// Plan injects nothing.
type Plan struct {
	// Crash fails the run before it starts.
	Crash bool
	// AbortFrac > 0 errors the run when its progress reaches the fraction.
	AbortFrac float64
	// HangSec > 0 stalls the run mid-way for this many wall-clock seconds
	// (cancellable by the run's context).
	HangSec float64
	// PanicFrac > 0 panics the run when its progress reaches the fraction.
	PanicFrac float64
	// DropFrac > 0 truncates trailing samples from a subset of trace
	// series, breaking alignment.
	DropFrac float64
	// NaNFrac > 0 replaces this fraction of samples in a subset of trace
	// series with NaN.
	NaNFrac float64
	// SkewFactor != 0 scales the whole run (trace and intensity
	// aggregates) by the factor; values are drawn far outside normal
	// run-to-run jitter so outlier detection has something to find.
	SkewFactor float64

	// seed drives the sample-level randomness of Corrupt.
	seed uint64
}

// Faulty reports whether the plan injects anything.
func (p Plan) Faulty() bool {
	return p.Crash || p.AbortFrac > 0 || p.HangSec > 0 || p.PanicFrac > 0 ||
		p.DropFrac > 0 || p.NaNFrac > 0 || p.SkewFactor != 0
}

// Injector decides, deterministically, which faults strike which attempt.
// A nil *Injector is valid and injects nothing.
type Injector struct {
	cfg    Config
	planFn func(unit string, run, attempt int) Plan
}

// New returns an injector for the config. It panics on invalid
// probabilities; use Parse for validated construction from user input.
func New(cfg Config) *Injector {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg.normalize()}
}

// NewFunc returns an injector whose plans come from fn verbatim — the
// test seam for scripting exact fault scenarios.
func NewFunc(fn func(unit string, run, attempt int) Plan) *Injector {
	return &Injector{planFn: fn}
}

// Config returns the normalized configuration (zero for NewFunc injectors).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// PlanFor returns the injection plan for one (unit, run, attempt). The
// result is a pure function of the injector seed and the three keys, so
// chaos runs are reproducible across worker counts and process restarts.
func (in *Injector) PlanFor(unit string, run, attempt int) Plan {
	if in == nil {
		return Plan{}
	}
	if in.planFn != nil {
		return in.planFn(unit, run, attempt)
	}
	c := in.cfg
	if c.CleanAfter >= 0 && attempt >= c.CleanAfter {
		return Plan{}
	}
	rng := xrand.New(c.Seed).
		Split(hashString(unit)).
		Split(uint64(run) + 1).
		Split(uint64(attempt) + 1)
	var p Plan
	p.seed = rng.Uint64()
	// Corruption modes are independent of each other and of the terminal
	// mode; a run can both drop samples and then abort.
	if rng.Bool(c.Drop) {
		p.DropFrac = 0.02 + 0.08*rng.Float64()
	}
	if rng.Bool(c.NaN) {
		p.NaNFrac = 0.005 + 0.03*rng.Float64()
	}
	if rng.Bool(c.Skew) {
		if rng.Bool(0.5) {
			p.SkewFactor = 0.4 + 0.2*rng.Float64() // 0.4 .. 0.6
		} else {
			p.SkewFactor = 1.5 + 0.4*rng.Float64() // 1.5 .. 1.9
		}
	}
	// At most one terminal mode per attempt, picked in fixed priority
	// order so the draw count stays constant.
	crash, abort, hang, pan := rng.Bool(c.Crash), rng.Bool(c.Abort), rng.Bool(c.Hang), rng.Bool(c.Panic)
	frac := 0.1 + 0.8*rng.Float64()
	switch {
	case crash:
		p.Crash = true
	case abort:
		p.AbortFrac = frac
	case hang:
		p.HangSec = c.HangSec
	case pan:
		p.PanicFrac = frac
	}
	return p
}

// Corrupt applies the plan's trace-corruption modes (drop, nan, skew) to
// the trace in place and reports whether anything was corrupted. The
// affected series and samples derive from the plan's private seed, so the
// damage is as reproducible as the decision to inflict it.
func (p Plan) Corrupt(t *profiler.Trace) bool {
	if t == nil || t.Samples == 0 || (p.DropFrac <= 0 && p.NaNFrac <= 0 && p.SkewFactor == 0) {
		return false
	}
	rng := xrand.New(p.seed)
	names := t.Metrics()
	sort.Strings(names)
	did := false
	if p.SkewFactor != 0 && p.SkewFactor != 1 {
		for _, n := range names {
			s := t.Series(n)
			for i := range s.Values {
				s.Values[i] *= p.SkewFactor
			}
		}
		did = true
	}
	if p.NaNFrac > 0 {
		for _, n := range pickSeries(rng, names) {
			s := t.Series(n)
			k := int(p.NaNFrac * float64(len(s.Values)))
			if k < 1 {
				k = 1
			}
			for j := 0; j < k; j++ {
				s.Values[rng.Intn(len(s.Values))] = math.NaN()
			}
			did = true
		}
	}
	if p.DropFrac > 0 {
		for _, n := range pickSeries(rng, names) {
			s := t.Series(n)
			k := int(p.DropFrac * float64(len(s.Values)))
			if k < 1 {
				k = 1
			}
			if k >= len(s.Values) {
				k = len(s.Values) - 1
			}
			s.Values = s.Values[:len(s.Values)-k]
			did = true
		}
	}
	return did
}

// pickSeries selects a small deterministic subset of the sorted names.
func pickSeries(rng *xrand.Rand, names []string) []string {
	if len(names) == 0 {
		return nil
	}
	k := 1 + rng.Intn(4)
	if k > len(names) {
		k = len(names)
	}
	out := make([]string, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k {
		i := rng.Intn(len(names))
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, names[i])
	}
	sort.Strings(out)
	return out
}

// Parse builds an injector from a comma-separated spec, the format of the
// CLIs' -inject flag:
//
//	crash=0.2,abort=0.1,hang=0.1,panic=0.05,drop=0.1,nan=0.1,skew=0.1,
//	seed=7,hang_sec=0.5,clean_after=3
//
// Unknown keys and out-of-range probabilities are errors. The empty spec
// returns a nil injector (no injection).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfg Config
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "clean_after":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fault: bad clean_after %q: %w", val, err)
			}
			cfg.CleanAfter = n
		case "hang_sec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad hang_sec %q: %w", val, err)
			}
			cfg.HangSec = f
		case "crash", "abort", "hang", "panic", "drop", "nan", "skew":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad probability %s=%q: %w", key, val, err)
			}
			switch key {
			case "crash":
				cfg.Crash = f
			case "abort":
				cfg.Abort = f
			case "hang":
				cfg.Hang = f
			case "panic":
				cfg.Panic = f
			case "drop":
				cfg.Drop = f
			case "nan":
				cfg.NaN = f
			case "skew":
				cfg.Skew = f
			}
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg.normalize()}, nil
}

// attemptKey carries the retry-attempt number through a context, so the
// engine (which only knows (workload, run)) can key injection decisions by
// attempt without a signature change.
type attemptKey struct{}

// WithAttempt tags the context with the attempt number of the run it will
// execute.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// Attempt returns the context's attempt number (0 when untagged).
func Attempt(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 0
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
