package fault

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"mobilebench/internal/profiler"
)

func TestPlanForDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Crash: 0.3, Abort: 0.3, Hang: 0.2, Panic: 0.2, Drop: 0.3, NaN: 0.3, Skew: 0.3}
	a, b := New(cfg), New(cfg)
	faulty := 0
	for run := 0; run < 4; run++ {
		for attempt := 0; attempt < 3; attempt++ {
			pa := a.PlanFor("Geekbench 5", run, attempt)
			pb := b.PlanFor("Geekbench 5", run, attempt)
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("run %d attempt %d: plans differ between identical injectors", run, attempt)
			}
			if pa.Faulty() {
				faulty++
			}
		}
	}
	if faulty == 0 {
		t.Fatal("no faults drawn at 30% probabilities over 12 attempts")
	}
	// Different units draw independent plans.
	if reflect.DeepEqual(plansOf(a, "A", 6), plansOf(a, "B", 6)) {
		t.Fatal("distinct units drew identical plan sequences")
	}
}

func plansOf(in *Injector, unit string, n int) []Plan {
	out := make([]Plan, n)
	for i := range out {
		out[i] = in.PlanFor(unit, 0, i)
	}
	return out
}

func TestCleanAfterGuaranteesRecovery(t *testing.T) {
	in := New(Config{Seed: 1, Crash: 1, CleanAfter: 2})
	if !in.PlanFor("x", 0, 0).Crash || !in.PlanFor("x", 0, 1).Crash {
		t.Fatal("crash=1 did not crash early attempts")
	}
	for attempt := 2; attempt < 5; attempt++ {
		if in.PlanFor("x", 0, attempt).Faulty() {
			t.Fatalf("attempt %d faulted despite clean_after=2", attempt)
		}
	}
}

func TestNilInjectorIsClean(t *testing.T) {
	var in *Injector
	if in.PlanFor("x", 0, 0).Faulty() {
		t.Fatal("nil injector injected a fault")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("crash=0.2, nan=0.1, seed=42, hang_sec=0.25, clean_after=5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := in.Config()
	if cfg.Crash != 0.2 || cfg.NaN != 0.1 || cfg.Seed != 42 || cfg.HangSec != 0.25 || cfg.CleanAfter != 5 {
		t.Fatalf("parsed config %+v", cfg)
	}
	if in, err := Parse(""); err != nil || in != nil {
		t.Fatalf("empty spec: injector %v err %v, want nil/nil", in, err)
	}
	for _, bad := range []string{"boom=1", "crash", "crash=1.5", "crash=x", "seed=-1"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// corruptibleTrace builds a small aligned trace.
func corruptibleTrace(t *testing.T) *profiler.Trace {
	t.Helper()
	p := profiler.New(0.1)
	for i := 0; i < 50; i++ {
		p.Sample("m.a", float64(i))
		p.Sample("m.b", 2*float64(i))
		p.Sample("m.c", 1)
	}
	tr, err := p.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCorruptNaNAndDropBreakValidation(t *testing.T) {
	tr := corruptibleTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("fresh trace invalid: %v", err)
	}
	p := Plan{NaNFrac: 0.05, seed: 99}
	if !p.Corrupt(tr) {
		t.Fatal("NaN corruption reported nothing done")
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("NaN-corrupted trace passed validation")
	}

	tr2 := corruptibleTrace(t)
	p2 := Plan{DropFrac: 0.1, seed: 99}
	if !p2.Corrupt(tr2) {
		t.Fatal("drop corruption reported nothing done")
	}
	err := tr2.Validate()
	if err == nil {
		t.Fatal("drop-corrupted trace passed validation")
	}
	if !strings.Contains(err.Error(), "dropped samples") {
		t.Fatalf("drop validation error = %v, want dropped-samples diagnosis", err)
	}
}

func TestCorruptSkewKeepsTraceValid(t *testing.T) {
	tr := corruptibleTrace(t)
	p := Plan{SkewFactor: 1.7, seed: 5}
	if !p.Corrupt(tr) {
		t.Fatal("skew reported nothing done")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("skewed trace should stay valid (outlier detection's job): %v", err)
	}
	if got := tr.Series("m.c").Values[0]; math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("skewed constant series value = %v, want 1.7", got)
	}
}

func TestCorruptIsDeterministic(t *testing.T) {
	a, b := corruptibleTrace(t), corruptibleTrace(t)
	p := Plan{NaNFrac: 0.04, DropFrac: 0.06, seed: 1234}
	p.Corrupt(a)
	p.Corrupt(b)
	for _, m := range a.Metrics() {
		va, vb := a.Series(m).Values, b.Series(m).Values
		if len(va) != len(vb) {
			t.Fatalf("series %s lengths differ: %d vs %d", m, len(va), len(vb))
		}
		for i := range va {
			same := va[i] == vb[i] || (math.IsNaN(va[i]) && math.IsNaN(vb[i]))
			if !same {
				t.Fatalf("series %s sample %d differs: %v vs %v", m, i, va[i], vb[i])
			}
		}
	}
}

func TestAttemptContext(t *testing.T) {
	ctx := context.Background()
	if Attempt(ctx) != 0 {
		t.Fatal("untagged context should report attempt 0")
	}
	if got := Attempt(WithAttempt(ctx, 3)); got != 3 {
		t.Fatalf("Attempt = %d, want 3", got)
	}
}
