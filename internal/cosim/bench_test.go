package cosim_test

import (
	"testing"

	"mobilebench/internal/cosim"
	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

// benchTarget/benchDemand are one representative tick's timing question: a
// mixed-residency footprint and a moderate storage load.
var (
	benchTarget = mem.Footprint{CPUHeapMB: 1800, GPUMB: 900, MediaMB: 120}
	benchDemand = mem.IODemand{SeqReadMBs: 220, RandReadIOPS: 3500, DatabaseOpsPerSec: 40}
)

// BenchmarkTimingModelInProcess is the per-tick cost of the in-process
// analytic timing pair — the exact math the default TimingModel runs.
func BenchmarkTimingModelInProcess(b *testing.B) {
	p := soc.Snapdragon888HDK()
	cur := mem.Footprint{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var res mem.Result
		res, cur = mem.StepFrom(p.Memory, cur, benchTarget, 0.1)
		io := mem.ServiceIO(p.Storage, benchDemand, 0.1)
		_, _ = res, io
	}
}

// BenchmarkTimingModelExternal is the same tick answered by a supervised
// external analytic child over the cosim protocol — the price of the
// process hop: JSON encode/decode, two pipe crossings and the supervision
// bookkeeping per tick.
func BenchmarkTimingModelExternal(b *testing.B) {
	p := soc.Snapdragon888HDK()
	provider, err := cosim.NewProvider(childConfig("", ""))
	if err != nil {
		b.Fatalf("NewProvider: %v", err)
	}
	defer provider.Close()
	tm, err := provider.NewTimingModel(p.Memory, p.Storage)
	if err != nil {
		b.Fatalf("NewTimingModel: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tm.Step(benchTarget, benchDemand, 0.1); err != nil {
			b.Fatalf("Step: %v", err)
		}
	}
}
