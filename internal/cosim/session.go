// The sim-facing adapter: Provider plugs a Supervisor into sim.Config as a
// TimingProvider, and each run gets its own Session — a sim.TimingModel
// that turns every tick into a protocol batch and threads the opaque model
// state between queries. Sessions of concurrent runs share one supervisor
// (and one child) safely, because the protocol is stateless per query.
package cosim

import (
	"encoding/json"
	"fmt"

	"mobilebench/internal/mem"
	"mobilebench/internal/sim"
	"mobilebench/internal/soc"
)

// Provider adapts a Supervisor to sim.TimingProvider. One Provider serves
// any number of runs; Close it after the collection (it owns the
// supervisor).
type Provider struct {
	sup *Supervisor
}

// NewProvider builds the supervisor (spawning and handshaking the child)
// and wraps it for sim.Config.Timing.
func NewProvider(cfg Config) (*Provider, error) {
	sup, err := NewSupervisor(cfg)
	if err != nil {
		return nil, err
	}
	return &Provider{sup: sup}, nil
}

// Supervisor exposes the underlying supervisor (tests and status surfaces).
func (p *Provider) Supervisor() *Supervisor { return p.sup }

// Close shuts the supervisor down (kills the child, flushes the replay
// log).
func (p *Provider) Close() error { return p.sup.Close() }

// Fingerprint implements sim.TimingProvider. An exact child returns "" —
// its datasets are bit-identical to in-process collection and share its
// checkpoint fingerprint. Any other model contributes its name, so
// snapshots collected under different timing never cross-resume.
func (p *Provider) Fingerprint() string {
	if p.sup.Exact() {
		return ""
	}
	return "cosim:" + p.sup.Model()
}

// NewTimingModel implements sim.TimingProvider.
func (p *Provider) NewTimingModel(memHW soc.Memory, storHW soc.Storage) (sim.TimingModel, error) {
	// The child computed against the hardware pinned in the handshake; a
	// platform mismatch here would silently answer for the wrong SoC.
	if memHW != p.sup.cfg.MemHW || storHW != p.sup.cfg.StorHW {
		return nil, fmt.Errorf("cosim: platform mismatch: the supervisor handshook a different memory/storage description")
	}
	return &Session{sup: p.sup}, nil
}

// Session is one run's view of the external model: it batches the tick's
// memory and storage queries into one frame and threads each kind's opaque
// state document from reply to query. Implements sim.TimingModel and
// sim.TimingReporter. Not safe for concurrent use (one Session per run,
// like the in-process models).
type Session struct {
	sup      *Supervisor
	memState json.RawMessage
	ioState  json.RawMessage
	notes    []string
	degraded bool
}

// Step implements sim.TimingModel: one tick's memory and storage questions
// as a single two-query batch.
func (s *Session) Step(target mem.Footprint, io mem.IODemand, dt float64) (mem.Result, mem.IOResult, error) {
	reps, info, err := s.sup.Exchange([]Query{
		{Kind: KindMem, DT: dt, Target: &target, State: s.memState},
		{Kind: KindIO, DT: dt, IO: &io, State: s.ioState},
	})
	if err != nil {
		return mem.Result{}, mem.IOResult{}, err
	}
	s.fold(info)
	if reps[0].Mem == nil || reps[1].IO == nil {
		return mem.Result{}, mem.IOResult{}, &ProtoError{Reason: "reply misses its result"}
	}
	s.memState, s.ioState = reps[0].State, reps[1].State
	return *reps[0].Mem, *reps[1].IO, nil
}

// MemStep implements sim.TimingModel for the fast-forward path, which
// advances memory occupancy without storage service.
func (s *Session) MemStep(target mem.Footprint, dt float64) (mem.Result, error) {
	reps, info, err := s.sup.Exchange([]Query{
		{Kind: KindMem, DT: dt, Target: &target, State: s.memState},
	})
	if err != nil {
		return mem.Result{}, err
	}
	s.fold(info)
	if reps[0].Mem == nil {
		return mem.Result{}, &ProtoError{Reason: "reply misses its mem result"}
	}
	s.memState = reps[0].State
	return *reps[0].Mem, nil
}

// Reset implements sim.TimingModel: a fresh run starts from empty model
// state and clean provenance.
func (s *Session) Reset() error {
	s.memState, s.ioState = nil, nil
	s.notes = nil
	s.degraded = false
	return nil
}

// TimingReport implements sim.TimingReporter: the supervision events and
// degradation flag accumulated since the last Reset, which the engine
// copies into the run's provenance.
func (s *Session) TimingReport() ([]string, bool) {
	return s.notes, s.degraded
}

// fold merges one exchange's supervision events into the run's report.
func (s *Session) fold(info ExchangeInfo) {
	s.notes = append(s.notes, info.Notes...)
	if info.Degraded && !s.degraded {
		s.degraded = true
		if len(info.Notes) == 0 {
			// The circuit opened in an earlier run; this run never saw the
			// transition note but its data is fallback-computed all the same.
			s.notes = append(s.notes, "cosim: run answered by the degraded in-process fallback")
		}
	}
}
