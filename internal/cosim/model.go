// The timing models a child can serve, expressed as pure functions over a
// (query, threaded state) pair. The analytic model re-exposes the exact
// in-process mem.StepFrom / mem.ServiceIO math, so its replies are
// bit-identical to a run that never left the process — both the reference
// child (cmd/mbtiming) and the supervisor's circuit-break fallback call it.
package cosim

import (
	"encoding/json"
	"fmt"

	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

// Model names.
const (
	// ModelAnalytic is the in-process analytic pair over the protocol;
	// replies are bit-identical to in-process collection (Exact).
	ModelAnalytic = "analytic"
	// ModelQDRAM is the queued-DRAM variant: the analytic memory model
	// plus a storage queue that carries a backlog across ticks, so
	// overloaded ticks spill service time into their successors. Not
	// exact — datasets collected under it get their own checkpoint
	// fingerprint.
	ModelQDRAM = "qdram"
)

// answerFunc computes one query's reply for a fixed hardware description.
type answerFunc func(q Query) (Reply, error)

// modelFor returns the named model's answer function and whether its
// replies are exact (bit-identical to the in-process analytic path).
func modelFor(name string, memHW soc.Memory, storHW soc.Storage) (answerFunc, bool, error) {
	switch name {
	case ModelAnalytic:
		return func(q Query) (Reply, error) { return answerAnalytic(memHW, storHW, q) }, true, nil
	case ModelQDRAM:
		return func(q Query) (Reply, error) { return answerQDRAM(memHW, storHW, q) }, false, nil
	default:
		return nil, false, fmt.Errorf("cosim: unknown timing model %q (want %s or %s)", name, ModelAnalytic, ModelQDRAM)
	}
}

// answerAnalytic answers one query with the exact in-process analytic
// models. Memory state is the current residency footprint, threaded as the
// query/reply state document; the storage model is stateless.
func answerAnalytic(memHW soc.Memory, storHW soc.Storage, q Query) (Reply, error) {
	switch q.Kind {
	case KindMem:
		var cur mem.Footprint
		if len(q.State) > 0 {
			if err := json.Unmarshal(q.State, &cur); err != nil {
				return Reply{}, &ProtoError{Reason: "mem query state: " + err.Error()}
			}
		}
		res, next := mem.StepFrom(memHW, cur, *q.Target, q.DT)
		state, err := json.Marshal(next)
		if err != nil {
			return Reply{}, &ProtoError{Reason: "mem reply state: " + err.Error()}
		}
		return Reply{Mem: &res, State: state}, nil
	case KindIO:
		res := mem.ServiceIO(storHW, *q.IO, q.DT)
		return Reply{IO: &res}, nil
	default:
		return Reply{}, &ProtoError{Reason: fmt.Sprintf("unknown query kind %q", q.Kind)}
	}
}

// qdramState is the queued-DRAM storage state threaded through io queries.
type qdramState struct {
	// BacklogMB is unserviced demand carried into the next tick.
	BacklogMB float64 `json:"backlog_mb"`
}

// answerQDRAM serves memory queries exactly like the analytic model and
// storage queries through a service queue: demand beyond the device's rated
// sequential throughput accumulates as backlog, inflating utilization and
// IO-submission CPU time on the following ticks until it drains.
func answerQDRAM(memHW soc.Memory, storHW soc.Storage, q Query) (Reply, error) {
	if q.Kind != KindIO {
		return answerAnalytic(memHW, storHW, q)
	}
	var st qdramState
	if len(q.State) > 0 {
		if err := json.Unmarshal(q.State, &st); err != nil {
			return Reply{}, &ProtoError{Reason: "io query state: " + err.Error()}
		}
	}
	d := *q.IO
	res := mem.ServiceIO(storHW, d, q.DT)
	demandMB := (d.SeqReadMBs+d.SeqWriteMBs)*q.DT + (d.RandReadIOPS+d.RandWriteIOPS)*4096/1e6*q.DT
	capMB := (storHW.SeqReadMBs + storHW.SeqWriteMBs) * q.DT
	queued := st.BacklogMB + demandMB
	movedMB := queued
	if capMB > 0 && movedMB > capMB {
		movedMB = capMB
	}
	st.BacklogMB = queued - movedMB
	res.BytesMoved = movedMB * 1e6
	if capMB > 0 {
		pressure := st.BacklogMB / capMB
		if pressure > 1 {
			pressure = 1
		}
		if u := res.Util + 0.5*pressure; u < 1 {
			res.Util = u
		} else {
			res.Util = 1
		}
		res.CPUDemand *= 1 + pressure
	}
	state, err := json.Marshal(st)
	if err != nil {
		return Reply{}, &ProtoError{Reason: "io reply state: " + err.Error()}
	}
	return Reply{IO: &res, State: state}, nil
}
