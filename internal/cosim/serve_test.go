package cosim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"mobilebench/internal/fault"
	"mobilebench/internal/mem"
)

func mustParseCosimChaos(t *testing.T, spec string) fault.CosimConfig {
	t.Helper()
	cfg, err := fault.ParseCosim(spec)
	if err != nil {
		t.Fatalf("ParseCosim(%q): %v", spec, err)
	}
	return cfg
}

// driveServe feeds the frames to Serve and returns the reply frames.
func driveServe(t *testing.T, opts ServeOptions, frames ...Frame) ([]Frame, error) {
	t.Helper()
	var in bytes.Buffer
	for _, f := range frames {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("EncodeFrame: %v", err)
		}
		in.Write(data)
	}
	var out bytes.Buffer
	err := Serve(&in, &out, opts)
	var replies []Frame
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 64*1024), MaxFrameBytes+4096)
	for sc.Scan() {
		f, perr := ParseFrame(sc.Bytes())
		if perr != nil {
			t.Fatalf("child emitted an unparsable frame: %v", perr)
		}
		replies = append(replies, f)
	}
	return replies, err
}

// TestServeAnalyticExact: the handshake names the model and marks it
// exact, and batch replies carry the exact in-process math.
func TestServeAnalyticExact(t *testing.T) {
	memHW, storHW := testHW()
	target := mem.Footprint{}
	demand := mem.IODemand{SeqReadMBs: 200, RandReadIOPS: 1000}
	out, err := driveServe(t, ServeOptions{},
		Frame{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW},
		Frame{Type: TypeBatch, ID: 5, Queries: []Query{
			{Kind: KindMem, DT: 0.1, Target: &target},
			{Kind: KindIO, DT: 0.1, IO: &demand},
		}},
	)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("child answered %d frames, want 2", len(out))
	}
	w := out[0]
	if w.Type != TypeWelcome || w.Proto != ProtoVersion || w.Model != ModelAnalytic || !w.Exact {
		t.Fatalf("welcome = %+v", w)
	}
	r := out[1]
	if r.Type != TypeReplies || r.ID != 5 || len(r.Replies) != 2 {
		t.Fatalf("replies = %+v", r)
	}
	wantMem, wantNext := mem.StepFrom(memHW, mem.Footprint{}, target, 0.1)
	if !reflect.DeepEqual(*r.Replies[0].Mem, wantMem) {
		t.Fatalf("mem reply drifted from mem.StepFrom:\n got %+v\nwant %+v", *r.Replies[0].Mem, wantMem)
	}
	var next mem.Footprint
	if err := json.Unmarshal(r.Replies[0].State, &next); err != nil {
		t.Fatalf("mem state: %v", err)
	}
	if next != wantNext {
		t.Fatalf("threaded state drifted: got %+v want %+v", next, wantNext)
	}
	wantIO := mem.ServiceIO(storHW, demand, 0.1)
	if !reflect.DeepEqual(*r.Replies[1].IO, wantIO) {
		t.Fatalf("io reply drifted from mem.ServiceIO:\n got %+v\nwant %+v", *r.Replies[1].IO, wantIO)
	}
}

// TestServeRejectsVersionSkew: a parent speaking another protocol version
// gets a reject, and Serve errors out.
func TestServeRejectsVersionSkew(t *testing.T) {
	memHW, storHW := testHW()
	out, err := driveServe(t, ServeOptions{},
		Frame{Type: TypeHello, Proto: ProtoVersion + 1, Memory: &memHW, Storage: &storHW})
	if err == nil {
		t.Fatal("Serve accepted a skewed hello")
	}
	if len(out) != 1 || out[0].Type != TypeReject {
		t.Fatalf("replies = %+v, want one reject", out)
	}
}

// TestServeRejectsUnknownModel: an unknown -model yields a reject.
func TestServeRejectsUnknownModel(t *testing.T) {
	memHW, storHW := testHW()
	out, err := driveServe(t, ServeOptions{Model: "quux"},
		Frame{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW})
	if err == nil {
		t.Fatal("Serve accepted an unknown model")
	}
	if len(out) != 1 || out[0].Type != TypeReject {
		t.Fatalf("replies = %+v, want one reject", out)
	}
}

// TestServeEOFBeforeHello: a parent that goes away before the handshake is
// a clean exit, not an error.
func TestServeEOFBeforeHello(t *testing.T) {
	var out bytes.Buffer
	if err := Serve(bytes.NewReader(nil), &out, ServeOptions{}); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("child wrote %q before any hello", out.String())
	}
}

// TestServeGarbageChaos answers the scheduled batch with a non-protocol
// line — and only that batch.
func TestServeGarbageChaos(t *testing.T) {
	memHW, storHW := testHW()
	target := mem.Footprint{}
	mkBatch := func(id uint64) Frame {
		return Frame{Type: TypeBatch, ID: id, Queries: []Query{{Kind: KindMem, DT: 0.1, Target: &target}}}
	}
	var in bytes.Buffer
	for _, f := range []Frame{
		{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW},
		mkBatch(1), mkBatch(2), mkBatch(3),
	} {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		in.Write(data)
	}
	var out bytes.Buffer
	if err := Serve(&in, &out, ServeOptions{Chaos: mustParseCosimChaos(t, "garbage_batch=2")}); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	var lines [][]byte
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if len(lines) != 4 {
		t.Fatalf("child wrote %d lines, want 4", len(lines))
	}
	if _, err := ParseFrame(lines[2]); err == nil {
		t.Fatal("the garbage line parses as a frame")
	}
	for _, i := range []int{1, 3} {
		f, err := ParseFrame(lines[i])
		if err != nil || f.Type != TypeReplies {
			t.Fatalf("line %d: %v %+v", i, err, f)
		}
	}
}

// TestQDRAMBacklogCarries: overload demand spills into the next tick's
// utilization and CPU demand through the threaded state.
func TestQDRAMBacklogCarries(t *testing.T) {
	memHW, storHW := testHW()
	answer, exact, err := modelFor(ModelQDRAM, memHW, storHW)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("qdram claims to be exact")
	}
	// Demand far above the device's rated throughput: backlog must form.
	overload := mem.IODemand{SeqReadMBs: (storHW.SeqReadMBs + storHW.SeqWriteMBs) * 3}
	r1, err := answer(Query{Kind: KindIO, DT: 0.1, IO: &overload})
	if err != nil {
		t.Fatal(err)
	}
	var st qdramState
	if err := json.Unmarshal(r1.State, &st); err != nil {
		t.Fatal(err)
	}
	if st.BacklogMB <= 0 {
		t.Fatalf("no backlog after 3x overload: %+v", st)
	}
	// An idle follow-up tick still pays for the backlog.
	idle := mem.IODemand{}
	r2, err := answer(Query{Kind: KindIO, DT: 0.1, IO: &idle, State: r1.State})
	if err != nil {
		t.Fatal(err)
	}
	calm := mem.ServiceIO(storHW, idle, 0.1)
	if r2.IO.Util <= calm.Util {
		t.Fatalf("backlog did not inflate utilization: %v vs calm %v", r2.IO.Util, calm.Util)
	}
	if r2.IO.BytesMoved <= calm.BytesMoved {
		t.Fatalf("backlog did not drain: moved %v vs calm %v", r2.IO.BytesMoved, calm.BytesMoved)
	}
	// Memory queries pass through to the exact analytic math.
	target := mem.Footprint{}
	rm, err := answer(Query{Kind: KindMem, DT: 0.1, Target: &target})
	if err != nil {
		t.Fatal(err)
	}
	wantMem, _ := mem.StepFrom(memHW, mem.Footprint{}, target, 0.1)
	if !reflect.DeepEqual(*rm.Mem, wantMem) {
		t.Fatal("qdram mem path drifted from the analytic model")
	}
}
