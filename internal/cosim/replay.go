// The deterministic replay log: every reply the supervisor accepts (from
// the child or its own degradation fallback) is recorded under the query's
// canonical bytes. A restarted child, a later attempt of the same run, or a
// -resume'd collection replays logged replies instead of re-asking, so a
// collection is bit-reproducible even when the child crashed mid-phase —
// the same guarantee MBCP checkpoints give completed (unit, run) pairs,
// one protocol layer further down.
package cosim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"

	"mobilebench/internal/checkpoint"
)

// Replay-log file format: magic, version, record count, records (each a
// length-prefixed key and value), and a trailing CRC-32 (IEEE) of every
// preceding byte. Records are written in sorted key order, so the file
// bytes are a pure function of its contents.
var replayMagic = [4]byte{'M', 'B', 'R', 'L'}

// ReplayVersion is the log schema version.
const ReplayVersion = 1

// maxReplayRecord bounds one key or value; anything larger marks a corrupt
// file rather than an allocation to attempt.
const maxReplayRecord = MaxFrameBytes

// replayFlushEvery is how many new records accumulate before MaybeFlush
// rewrites the log on disk (it also flushes on Close/Flush).
const replayFlushEvery = 256

// LogError reports an unusable replay-log file. Corruption is loud: a
// damaged log could silently serve wrong replies, so it fails the open
// instead of degrading.
type LogError struct {
	Path   string
	Reason string
}

// Error implements error.
func (e *LogError) Error() string { return fmt.Sprintf("cosim: replay log %s: %s", e.Path, e.Reason) }

// ReplayLog is the supervisor's reply cache: an in-memory map persisted as
// a CRC'd file through checkpoint.AtomicFile. A nil *ReplayLog is valid and
// caches nothing (replay disabled). Safe for concurrent use.
//
// Persistence is deferred: Put is pure in-memory, and flushing encodes a
// snapshot under mu but performs the file write under a separate write
// mutex, so Get/Put/Len are never stalled behind disk I/O (the PR-8
// supervisor-stall class: a flush under the map mutex blocked every
// reader for the duration of an atomic rewrite).
type ReplayLog struct {
	// mu guards the map and the generation counters; it is only ever held
	// for in-memory work.
	mu   sync.Mutex
	path string
	m    map[string][]byte
	// puts counts accepted Puts; flushed is the puts value captured by the
	// last durable flush. Their difference is the dirty-record count.
	puts    uint64
	flushed uint64
	// wmu serializes flushers' file writes. Never held together with mu,
	// and never taken by Get/Put/Len.
	wmu sync.Mutex
}

// OpenReplayLog loads the log at path, or starts an empty one when the file
// does not exist yet. A corrupt, truncated or version-skewed file returns a
// *LogError.
func OpenReplayLog(path string) (*ReplayLog, error) {
	l := &ReplayLog{path: path, m: make(map[string][]byte)}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := l.decode(data); err != nil {
			return nil, err
		}
	case errors.Is(err, fs.ErrNotExist):
		// Fresh start.
	default:
		return nil, err
	}
	return l, nil
}

func (l *ReplayLog) decode(data []byte) error {
	fail := func(reason string) error { return &LogError{Path: l.path, Reason: reason} }
	if len(data) < len(replayMagic)+4+8+4 {
		return fail("file too short to be a replay log")
	}
	if !bytes.Equal(data[:4], replayMagic[:]) {
		return fail("bad magic (not a replay log)")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fail("checksum mismatch (corrupt or truncated)")
	}
	r := bytes.NewReader(body[4:])
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fail("unreadable version")
	}
	if version != ReplayVersion {
		return fail(fmt.Sprintf("schema version %d (this build reads %d)", version, ReplayVersion))
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fail("unreadable record count")
	}
	for i := uint64(0); i < count; i++ {
		key, err := readBlob(r)
		if err != nil {
			return fail(fmt.Sprintf("record %d key: %v", i, err))
		}
		val, err := readBlob(r)
		if err != nil {
			return fail(fmt.Sprintf("record %d value: %v", i, err))
		}
		l.m[string(key)] = val
	}
	if r.Len() != 0 {
		return fail("trailing bytes after the last record")
	}
	return nil
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxReplayRecord {
		return nil, fmt.Errorf("blob of %d bytes exceeds the %d-byte bound", n, maxReplayRecord)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Get returns the logged reply bytes for the query key.
func (l *ReplayLog) Get(key string) ([]byte, bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.m[key]
	return v, ok
}

// Put records a reply under its query key, purely in memory. Re-putting
// an existing key is a no-op: first write wins, so a reply can never
// change under a key. Callers make the record durable with MaybeFlush
// (batched) or Flush (unconditional) once they are outside their own
// critical sections.
func (l *ReplayLog) Put(key string, reply []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[key]; ok {
		return
	}
	l.m[key] = append([]byte(nil), reply...)
	l.puts++
}

// Len returns the number of logged replies.
func (l *ReplayLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// MaybeFlush persists the log if enough new records accumulated since
// the last durable flush. The supervisor calls it after every exchange,
// outside its own mutex.
func (l *ReplayLog) MaybeFlush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	dirty := l.puts - l.flushed
	l.mu.Unlock()
	if dirty < replayFlushEvery {
		return nil
	}
	return l.Flush()
}

// Flush persists the log atomically (temp + fsync + rename); a crash
// mid-flush leaves the previous file intact. The snapshot is encoded
// under the map mutex, but the file write happens under the separate
// write mutex, so concurrent Get/Put never wait on disk. A failed write
// leaves the flushed generation unchanged: the records stay dirty and
// the next flush retries them.
func (l *ReplayLog) Flush() error {
	if l == nil {
		return nil
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.mu.Lock()
	if l.puts == l.flushed {
		l.mu.Unlock()
		return nil
	}
	gen := l.puts
	data := l.encodeLocked()
	l.mu.Unlock()
	//mblint:ignore mutexhold l.wmu exists solely to serialize flushers' writes; Get/Put/Len never take it
	if err := checkpoint.WriteFile(l.path, data, 0o644); err != nil {
		return err
	}
	l.mu.Lock()
	// Puts that arrived while the file was being written are newer than
	// the snapshot on disk; the generation guard keeps them dirty.
	if l.flushed < gen {
		l.flushed = gen
	}
	l.mu.Unlock()
	return nil
}

// encodeLocked renders the file bytes for the current contents. l.mu held.
func (l *ReplayLog) encodeLocked() []byte {
	keys := make([]string, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	// Sorted order makes the file bytes a pure function of the contents,
	// independent of insertion (and map-iteration) order.
	sort.Strings(keys)
	var b bytes.Buffer
	b.Write(replayMagic[:])
	_ = binary.Write(&b, binary.LittleEndian, uint32(ReplayVersion))
	_ = binary.Write(&b, binary.LittleEndian, uint64(len(keys)))
	for _, k := range keys {
		_ = binary.Write(&b, binary.LittleEndian, uint32(len(k)))
		b.WriteString(k)
		v := l.m[k]
		_ = binary.Write(&b, binary.LittleEndian, uint32(len(v)))
		b.Write(v)
	}
	sum := crc32.ChecksumIEEE(b.Bytes())
	_ = binary.Write(&b, binary.LittleEndian, sum)
	return b.Bytes()
}
