package cosim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "replay.log")
}

// TestReplayLogRoundTrip: put, flush, reopen, get the same bytes back.
func TestReplayLogRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := OpenReplayLog(path)
	if err != nil {
		t.Fatalf("OpenReplayLog: %v", err)
	}
	l.Put("q1", []byte(`{"mem":{}}`))
	l.Put("q2", []byte(`{"io":{}}`))
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	re, err := OpenReplayLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened log has %d records, want 2", re.Len())
	}
	v, ok := re.Get("q1")
	if !ok || string(v) != `{"mem":{}}` {
		t.Fatalf("Get(q1) = %q, %v", v, ok)
	}
}

// TestReplayLogFirstWriteWins: a reply can never change under its key.
func TestReplayLogFirstWriteWins(t *testing.T) {
	l, err := OpenReplayLog(tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	l.Put("k", []byte("first"))
	l.Put("k", []byte("second"))
	if v, _ := l.Get("k"); string(v) != "first" {
		t.Fatalf("Get = %q, want the first write", v)
	}
}

// TestReplayLogNilSafe: a nil log (replay disabled) caches nothing and
// errors nowhere.
func TestReplayLogNilSafe(t *testing.T) {
	var l *ReplayLog
	if _, ok := l.Get("k"); ok {
		t.Fatal("nil log returned a hit")
	}
	l.Put("k", []byte("v"))
	if err := l.MaybeFlush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatal("nil log has length")
	}
}

// TestReplayLogMaybeFlushBatches: Put is pure in-memory; MaybeFlush is a
// no-op below the batching threshold and persists everything at it, so a
// crashed process still loses at most one batch's tail while no reader
// ever waits on the disk behind l.mu (the PR-8 stall class).
func TestReplayLogMaybeFlushBatches(t *testing.T) {
	path := tmpLog(t)
	l, err := OpenReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < replayFlushEvery-1; i++ {
		l.Put(fmt.Sprintf("k%04d", i), []byte("v"))
	}
	if err := l.MaybeFlush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("MaybeFlush wrote below the batching threshold")
	}
	l.Put("last", []byte("v"))
	if err := l.MaybeFlush(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenReplayLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != replayFlushEvery {
		t.Fatalf("flushed log has %d records, want %d", re.Len(), replayFlushEvery)
	}
	// Nothing new since the durable flush: the next flushes are no-ops.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("Flush rewrote a clean log")
	}
}

// TestReplayLogFailedFlushStaysDirty: a failed write leaves the records
// dirty, so the next flush retries them instead of silently dropping the
// batch.
func TestReplayLogFailedFlushStaysDirty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing", "replay.log")
	l, err := OpenReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Put("k", []byte("v"))
	if err := l.Flush(); err == nil {
		t.Fatal("Flush into a missing directory succeeded")
	}
	if err := os.Mkdir(filepath.Join(dir, "missing"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("retried Flush: %v", err)
	}
	re, err := OpenReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("retried flush persisted %d records, want 1", re.Len())
	}
}

// TestReplayLogDeterministicBytes: the file bytes are a pure function of
// the contents, independent of insertion order.
func TestReplayLogDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, keys []string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		l, err := OpenReplayLog(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			l.Put(k, []byte("v-"+k))
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write("a.log", []string{"x", "y", "z"})
	b := write("b.log", []string{"z", "x", "y"})
	if string(a) != string(b) {
		t.Fatal("log bytes depend on insertion order")
	}
}

// TestReplayLogRefusesDamage: corruption is loud — a damaged log fails the
// open instead of silently serving wrong replies.
func TestReplayLogRefusesDamage(t *testing.T) {
	path := tmpLog(t)
	l, err := OpenReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Put("key", []byte("value"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func() []byte{
		"flipped byte": func() []byte {
			d := append([]byte(nil), good...)
			d[len(d)/2] ^= 0xff
			return d
		},
		"truncated": func() []byte { return good[:len(good)-3] },
		"bad magic": func() []byte {
			d := append([]byte(nil), good...)
			d[0] = 'X'
			return d
		},
		"version skew": func() []byte {
			d := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(d[4:], ReplayVersion+1)
			// Recompute the CRC so only the version is wrong.
			binary.LittleEndian.PutUint32(d[len(d)-4:], crc32.ChecksumIEEE(d[:len(d)-4]))
			return d
		},
		"trailing bytes": func() []byte {
			d := append(append([]byte(nil), good...), "extra"...)
			return d
		},
		"too short": func() []byte { return good[:6] },
	}
	for name, make := range damage {
		if err := os.WriteFile(path, make(), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenReplayLog(path)
		if err == nil {
			t.Errorf("%s: OpenReplayLog accepted a damaged file", name)
			continue
		}
		if _, ok := err.(*LogError); !ok {
			t.Errorf("%s: error is %T, want *LogError", name, err)
		}
	}
}
