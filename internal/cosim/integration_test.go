package cosim_test

import (
	"crypto/md5"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"mobilebench/internal/checkpoint"
	"mobilebench/internal/core"
	"mobilebench/internal/cosim"
	"mobilebench/internal/sim"
	"mobilebench/internal/workload"
)

// shortestUnits returns the n shortest analysis units — the same pick the
// core chaos tests use to keep full-collection tests fast.
func shortestUnits(n int) []workload.Workload {
	units := workload.AnalysisUnits()
	sort.Slice(units, func(i, j int) bool { return units[i].Duration() < units[j].Duration() })
	return units[:n]
}

func collect(t *testing.T, opts core.Options) *core.Dataset {
	t.Helper()
	ds, err := core.Collect(opts)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return ds
}

func newProvider(t *testing.T, cfg cosim.Config) *cosim.Provider {
	t.Helper()
	p, err := cosim.NewProvider(cfg)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func md5OfFile(t *testing.T, path string) [md5.Size]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return md5.Sum(data)
}

// baseOpts is the shared collection shape: 1 short unit, 2 runs, Workers=1
// so checkpoint records land in deterministic order and raw file MD5s are
// comparable.
func baseOpts() core.Options {
	return core.Options{
		Sim:     sim.Config{Seed: 888},
		Runs:    2,
		Units:   shortestUnits(1),
		Workers: 1,
	}
}

// TestCosimByteIdenticalToInProcess is the tentpole acceptance on the happy
// path: a collection timed by the external analytic model is byte-identical
// to the in-process one — same dataset, same checkpoint file MD5.
func TestCosimByteIdenticalToInProcess(t *testing.T) {
	dir := t.TempDir()

	inOpts := baseOpts()
	inOpts.Checkpoint = filepath.Join(dir, "inproc.ckpt")
	base := collect(t, inOpts)

	exOpts := baseOpts()
	exOpts.Checkpoint = filepath.Join(dir, "cosim.ckpt")
	exOpts.Sim.Timing = newProvider(t, childConfig("", ""))
	ds := collect(t, exOpts)

	if !reflect.DeepEqual(ds.Units, base.Units) {
		t.Fatal("externally timed dataset differs from the in-process one")
	}
	if ds.Degraded() {
		t.Fatalf("clean external run degraded: %+v", ds.Provenance)
	}
	if a, b := md5OfFile(t, inOpts.Checkpoint), md5OfFile(t, exOpts.Checkpoint); a != b {
		t.Fatalf("checkpoint MD5 drifted: in-process %x, cosim %x", a, b)
	}
}

// TestCosimConcurrentRunsShareOneChild: concurrent runs multiplex one
// supervisor (and one child) and still land deep-equal to the sequential
// in-process collection — the stateless protocol keeps interleaved query
// streams independent.
func TestCosimConcurrentRunsShareOneChild(t *testing.T) {
	base := collect(t, baseOpts())
	opts := baseOpts()
	opts.Workers = 4
	opts.Sim.Timing = newProvider(t, childConfig("", ""))
	ds := collect(t, opts)
	if !reflect.DeepEqual(ds.Units, base.Units) {
		t.Fatal("concurrent externally timed dataset differs from the sequential in-process one")
	}
}

// TestCosimKillRecoveryByteIdentical is the crash half of the acceptance:
// with the child repeatedly killed mid-run, restart + re-ask must converge
// to the same checkpoint MD5 as in-process collection — without degrading.
func TestCosimKillRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()

	inOpts := baseOpts()
	inOpts.Checkpoint = filepath.Join(dir, "inproc.ckpt")
	base := collect(t, inOpts)

	cfg := childConfig("", "kill_every=97")
	cfg.MaxStrikes = 1 << 20 // recovery, not degradation, is under test
	exOpts := baseOpts()
	exOpts.Checkpoint = filepath.Join(dir, "chaos.ckpt")
	exOpts.Sim.Timing = newProvider(t, cfg)
	ds := collect(t, exOpts)

	if !reflect.DeepEqual(ds.Units, base.Units) {
		t.Fatal("kill-chaos dataset differs from the in-process baseline")
	}
	if a, b := md5OfFile(t, inOpts.Checkpoint), md5OfFile(t, exOpts.Checkpoint); a != b {
		t.Fatalf("checkpoint MD5 drifted under kill chaos: %x vs %x", a, b)
	}
	if ds.Degraded() {
		t.Fatalf("kill chaos degraded the dataset: %+v", ds.Provenance)
	}
	// The provenance must show the supervision actually worked for its
	// bytes: restarts happened and were recorded.
	prov, ok := ds.ProvenanceOf(exOpts.Units[0].Name)
	if !ok {
		t.Fatal("no provenance for the unit")
	}
	restarted := false
	for _, r := range prov.Runs {
		if notesContain(r.TimingNotes, "restarted") {
			restarted = true
		}
		if r.TimingDegraded {
			t.Fatalf("run %d on the degraded fallback despite the strike budget", r.Run)
		}
	}
	if !restarted {
		t.Fatal("kill chaos produced no restart notes — did the child ever die?")
	}
}

// TestCosimCircuitBreakByteIdentical is the degradation half: a child too
// broken to restart opens the circuit, the in-process fallback takes over,
// and — because the fallback computes the exact same bytes for an exact
// child — the checkpoint MD5 still matches; the switch lands in provenance.
func TestCosimCircuitBreakByteIdentical(t *testing.T) {
	dir := t.TempDir()

	inOpts := baseOpts()
	inOpts.Checkpoint = filepath.Join(dir, "inproc.ckpt")
	base := collect(t, inOpts)

	cfg := childConfig("", "kill_every=1")
	cfg.MaxStrikes = 2
	exOpts := baseOpts()
	exOpts.Checkpoint = filepath.Join(dir, "broken.ckpt")
	exOpts.Sim.Timing = newProvider(t, cfg)
	ds := collect(t, exOpts)

	if !reflect.DeepEqual(ds.Units, base.Units) {
		t.Fatal("circuit-broken dataset differs from the in-process baseline")
	}
	if a, b := md5OfFile(t, inOpts.Checkpoint), md5OfFile(t, exOpts.Checkpoint); a != b {
		t.Fatalf("checkpoint MD5 drifted after the circuit break: %x vs %x", a, b)
	}
	if !ds.Degraded() {
		t.Fatal("circuit break not surfaced through Dataset.Degraded")
	}
	prov, ok := ds.ProvenanceOf(exOpts.Units[0].Name)
	if !ok || prov.TimingDegradedRuns() == 0 {
		t.Fatalf("degradation not recorded in provenance: %+v", prov)
	}
}

// TestCosimResumeEveryBoundary mirrors the core chaos sweep one layer
// further out: a collection timed by a live external model (with a replay
// log) is crashed at every (unit, run) boundary and resumed — and must
// land bit-identical to the in-process baseline every time.
func TestCosimResumeEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	base := collect(t, baseOpts())

	cfg := childConfig("", "")
	cfg.ReplayPath = filepath.Join(dir, "replay.log")
	provider := newProvider(t, cfg)

	opts := baseOpts()
	opts.Sim.Timing = provider
	opts.Checkpoint = filepath.Join(dir, "full.ckpt")
	full0 := collect(t, opts)
	if !reflect.DeepEqual(full0.Units, base.Units) {
		t.Fatal("checkpointed cosim collection differs from the in-process baseline")
	}

	fp, err := opts.CheckpointFingerprint()
	if err != nil {
		t.Fatalf("CheckpointFingerprint: %v", err)
	}
	full, err := checkpoint.Load(opts.Checkpoint, fp)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(full.Records) != 2 {
		t.Fatalf("snapshot has %d records, want 2", len(full.Records))
	}
	for k := 0; k <= len(full.Records); k++ {
		path := filepath.Join(dir, "resume.ckpt")
		prefix := &checkpoint.Snapshot{Fingerprint: full.Fingerprint, Records: full.Records[:k]}
		if err := checkpoint.Save(path, prefix); err != nil {
			t.Fatalf("k=%d: Save: %v", k, err)
		}
		o := opts
		o.Checkpoint, o.Resume = path, true
		got := collect(t, o)
		if !reflect.DeepEqual(got.Units, base.Units) {
			t.Fatalf("k=%d: resumed cosim dataset differs from the baseline", k)
		}
		if !reflect.DeepEqual(got.Provenance, base.Provenance) {
			t.Fatalf("k=%d: resumed provenance differs:\n got %+v\nwant %+v", k, got.Provenance, base.Provenance)
		}
	}
}

// TestQDRAMFingerprintSeparates: a non-exact model stamps the checkpoint
// fingerprint, so its snapshots can never cross-resume with in-process
// ones; the collection itself still completes.
func TestQDRAMFingerprintSeparates(t *testing.T) {
	inOpts := baseOpts()
	inCanon, err := inOpts.CheckpointCanonical()
	if err != nil {
		t.Fatal(err)
	}
	qOpts := baseOpts()
	provider := newProvider(t, childConfig(cosim.ModelQDRAM, ""))
	if fp := provider.Fingerprint(); fp != "cosim:qdram" {
		t.Fatalf("qdram fingerprint = %q", fp)
	}
	qOpts.Sim.Timing = provider
	qCanon, err := qOpts.CheckpointCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if inCanon == qCanon {
		t.Fatal("qdram collection shares the in-process checkpoint canonical string")
	}
	ds := collect(t, qOpts)
	if len(ds.Units) != 1 || ds.Units[0].Agg.RuntimeSec <= 0 {
		t.Fatalf("qdram collection produced no data: %+v", ds.Units)
	}
}
