// The supervision envelope around the external timing process: spawn,
// version-checked handshake with a deadline, per-batch query deadlines,
// crash detection on pipe EOF, hang detection via read timeouts, capped
// deterministically-jittered restart backoff, and a circuit breaker that —
// after MaxStrikes failed exchanges — stops restarting and answers every
// further query with the in-process analytic models. Because the protocol
// threads all model state through the queries, a restarted child resumes
// mid-run with zero warm-up, and (for an exact child) the fallback computes
// the very same bytes, so every failure path converges to the same dataset.
package cosim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"

	"mobilebench/internal/soc"
	"mobilebench/internal/xrand"
)

// Supervision defaults.
const (
	defaultHandshakeTimeout = 5 * time.Second
	defaultQueryTimeout     = 2 * time.Second
	defaultMaxStrikes       = 3
	defaultBackoffBase      = 50 * time.Millisecond
	defaultBackoffCap       = 1 * time.Second
	defaultSeed             = 888
)

// Config parameterizes a Supervisor.
type Config struct {
	// Command is the child command line (argv); Command[0] is the binary.
	Command []string
	// Env is extra environment appended to the parent's (tests use it to
	// steer the re-exec'd child); nil inherits the parent environment.
	Env []string
	// MemHW and StorHW describe the simulated platform; they travel in the
	// hello frame so the child computes against exactly this hardware.
	MemHW  soc.Memory
	StorHW soc.Storage
	// HandshakeTimeout bounds the hello→welcome round trip (0 = 5 s).
	HandshakeTimeout time.Duration
	// QueryTimeout bounds each batch round trip; a child that exceeds it
	// is declared hung and killed (0 = 2 s).
	QueryTimeout time.Duration
	// MaxStrikes is how many failed exchanges (crash, hang, garbage,
	// failed restart) the supervisor tolerates before opening the circuit
	// breaker and degrading permanently to the in-process models (0 = 3).
	MaxStrikes int
	// BackoffBase is the delay before the first restart; it doubles per
	// restart, capped at BackoffCap, with a deterministic ±50% jitter from
	// (Seed, restart count). Zero selects 50 ms / 1 s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter stream (0 = 888).
	Seed uint64
	// ReplayPath names the replay-log file ("" disables replay logging).
	ReplayPath string
	// Stderr receives the child's stderr (nil discards it).
	Stderr io.Writer
}

func (c Config) normalize() Config {
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = defaultHandshakeTimeout
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = defaultQueryTimeout
	}
	if c.MaxStrikes <= 0 {
		c.MaxStrikes = defaultMaxStrikes
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = defaultBackoffCap
	}
	if c.Seed == 0 {
		c.Seed = defaultSeed
	}
	return c
}

// SkewError reports a version-skewed or rejected handshake: the child
// speaks a different protocol, so restarting cannot help. It opens the
// circuit immediately without burning strikes.
type SkewError struct {
	Reason string
}

// Error implements error.
func (e *SkewError) Error() string { return "cosim: handshake failed permanently: " + e.Reason }

// ExchangeInfo reports what happened around one exchange: supervision
// events (restarts, circuit opening) and whether the replies came from the
// degraded in-process fallback.
type ExchangeInfo struct {
	// Notes lists supervision events that fired during this exchange.
	Notes []string
	// Degraded marks replies computed by the in-process fallback.
	Degraded bool
}

// child is one running model process.
type child struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	// lines carries the child's stdout lines; closed on EOF (crash).
	lines chan []byte
}

// Supervisor runs and guards one external timing process. All exchanges are
// serialized: the child answers one batch at a time, which keeps the
// failure attribution trivial (an unexpected or missing frame always
// belongs to the in-flight batch). Safe for concurrent use — but note that
// the serialization means a slow child stalls every session sharing the
// supervisor for up to QueryTimeout per batch. The recovery path does not
// compound that: restart backoff sleeps and replacement handshakes release
// the lock (see restartUnlocking), so a sick child never blocks the status
// accessors or other sessions for multiple seconds per strike.
type Supervisor struct {
	cfg Config
	log *ReplayLog
	// fallback answers queries in-process once the circuit opens.
	fallback answerFunc

	mu       sync.Mutex
	c        *child
	nextID   uint64
	strikes  int
	restarts int
	open     bool
	model    string
	exact    bool
	closed   bool
}

// NewSupervisor validates the config, opens the replay log, spawns the
// child and completes the version-checked handshake. Handshake failures at
// construction are returned as errors (fail fast at CLI startup) instead of
// opening the circuit.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	if len(cfg.Command) == 0 || cfg.Command[0] == "" {
		return nil, fmt.Errorf("cosim: empty timing-model command")
	}
	cfg = cfg.normalize()
	s := &Supervisor{cfg: cfg}
	fb, _, err := modelFor(ModelAnalytic, cfg.MemHW, cfg.StorHW)
	if err != nil {
		return nil, err
	}
	s.fallback = fb
	if cfg.ReplayPath != "" {
		if s.log, err = OpenReplayLog(cfg.ReplayPath); err != nil {
			return nil, err
		}
	}
	c, model, exact, err := s.spawn("", false)
	if err != nil {
		return nil, err
	}
	s.c, s.model, s.exact = c, model, exact
	return s, nil
}

// Model returns the child's model name from the welcome frame.
func (s *Supervisor) Model() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// Exact reports whether the child declared its replies bit-identical to the
// in-process analytic models.
func (s *Supervisor) Exact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exact
}

// Degraded reports whether the circuit breaker has opened: all further
// queries are answered by the in-process fallback.
func (s *Supervisor) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open
}

// Close kills the child and flushes the replay log. The supervisor is
// unusable afterwards.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	//mblint:ignore mutexhold Kill closes the child's pipes first, so Wait reaps promptly; teardown under s.mu is bounded
	s.killLocked()
	s.mu.Unlock()
	// The final flush runs outside s.mu: a slow disk at shutdown must not
	// stall status accessors or sessions still observing the closed state.
	return s.log.Flush()
}

// Exchange answers the queries, in order: first from the replay log, then —
// for whatever the log cannot answer — from the supervised child (or the
// in-process fallback once the circuit is open). Every newly computed reply
// is appended to the log before Exchange returns it, so re-asking after any
// crash, restart or resume replays the same bytes.
func (s *Supervisor) Exchange(queries []Query) ([]Reply, ExchangeInfo, error) {
	s.mu.Lock()
	//mblint:ignore mutexhold exchanges are serialized by contract — s.mu IS the one-batch-at-a-time serialization, and the recovery path's long waits release it (restartUnlocking)
	out, info, err := s.exchangeLocked(queries)
	s.mu.Unlock()
	if err != nil {
		return nil, info, err
	}
	// Newly computed replies become durable here, outside s.mu: the log
	// batches its own writes behind a dedicated write mutex, so neither
	// status accessors nor concurrent sessions queue behind the disk.
	if err := s.log.MaybeFlush(); err != nil {
		return nil, info, err
	}
	return out, info, nil
}

// exchangeLocked is Exchange's body; s.mu is held throughout (modulo the
// recovery waits, which release it — see askLocked).
func (s *Supervisor) exchangeLocked(queries []Query) ([]Reply, ExchangeInfo, error) {
	var info ExchangeInfo
	if s.closed {
		return nil, info, fmt.Errorf("cosim: supervisor is closed")
	}
	out := make([]Reply, len(queries))
	keys := make([]string, len(queries))
	var missing []int
	for i, q := range queries {
		k, err := queryKey(q)
		if err != nil {
			return nil, info, err
		}
		keys[i] = k
		raw, ok := s.log.Get(k)
		if !ok {
			missing = append(missing, i)
			continue
		}
		var r Reply
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, info, &LogError{Path: s.cfg.ReplayPath, Reason: "logged reply undecodable: " + err.Error()}
		}
		if r.Degraded {
			// A logged fallback-computed reply keeps its provenance on
			// replay: this run's data is partly analytic-fallback bytes even
			// if this supervisor's own circuit never opened.
			info.Degraded = true
		}
		out[i] = r
	}
	if len(missing) == 0 {
		return out, info, nil
	}
	sub := make([]Query, len(missing))
	for j, i := range missing {
		sub[j] = queries[i]
	}
	reps, err := s.askLocked(sub, &info)
	if err != nil {
		return nil, info, err
	}
	for j, i := range missing {
		raw, merr := json.Marshal(reps[j])
		if merr != nil {
			return nil, info, &ProtoError{Reason: "unencodable reply: " + merr.Error()}
		}
		s.log.Put(keys[i], raw)
		// The log wins ties: a restart wait releases the lock, so a
		// concurrent session may have answered (and logged) the same query
		// first. Every session must return the bytes a resume would replay —
		// the first write — not its own re-computation.
		if logged, ok := s.log.Get(keys[i]); ok {
			var r Reply
			if err := json.Unmarshal(logged, &r); err != nil {
				return nil, info, &LogError{Path: s.cfg.ReplayPath, Reason: "logged reply undecodable: " + err.Error()}
			}
			if r.Degraded {
				info.Degraded = true
			}
			out[i] = r
		} else {
			out[i] = reps[j] // replay logging disabled
		}
	}
	return out, info, nil
}

// askLocked obtains replies for queries the log could not answer, driving
// the strike/restart/circuit state machine until it has them. s.mu is held
// on entry and on every return, but restarts release it around their waits,
// so each iteration re-reads the shared state from scratch (the circuit may
// have opened, a replacement child may have appeared, or the supervisor may
// have been closed while this goroutine slept).
func (s *Supervisor) askLocked(queries []Query, info *ExchangeInfo) ([]Reply, error) {
	for {
		if s.closed {
			return nil, fmt.Errorf("cosim: supervisor closed mid-exchange")
		}
		if s.open {
			info.Degraded = true
			reps := make([]Reply, len(queries))
			for i, q := range queries {
				r, err := s.fallback(q)
				if err != nil {
					return nil, err
				}
				r.Degraded = true
				reps[i] = r
			}
			return reps, nil
		}
		if s.c == nil {
			if err := s.restartUnlocking(info); err != nil {
				// A skewed or rejected handshake on restart is permanent —
				// the replacement child speaks a different protocol (say, a
				// binary upgraded under us), and no amount of respawning
				// fixes that. Straight to the circuit, no strikes burned.
				if _, skew := err.(*SkewError); skew {
					s.openCircuitLocked(info, err)
				} else {
					s.strikeLocked(info, err)
				}
			}
			continue
		}
		reps, err := s.exchangeOnceLocked(queries)
		if err == nil {
			return reps, nil
		}
		s.strikeLocked(info, err)
	}
}

// strikeLocked records one failed exchange or restart: the child (if any)
// is killed, and once the strike budget is spent the circuit opens.
func (s *Supervisor) strikeLocked(info *ExchangeInfo, cause error) {
	s.strikes++
	s.killLocked()
	if s.strikes >= s.cfg.MaxStrikes {
		s.openCircuitLocked(info, cause)
		return
	}
	info.Notes = append(info.Notes,
		fmt.Sprintf("cosim: strike %d/%d against %s: %v", s.strikes, s.cfg.MaxStrikes, s.cfg.Command[0], cause))
}

// openCircuitLocked degrades the supervisor permanently to the in-process
// fallback.
func (s *Supervisor) openCircuitLocked(info *ExchangeInfo, cause error) {
	s.open = true
	s.killLocked()
	info.Notes = append(info.Notes,
		fmt.Sprintf("cosim: circuit opened after %d strikes, degrading to the in-process analytic models: %v", s.strikes, cause))
}

// restartUnlocking waits the capped deterministically-jittered backoff and
// spawns a fresh child. The backoff sleep and the replacement's handshake —
// the two multi-second waits on the recovery path — run with s.mu released,
// so a sick child cannot stall concurrent sessions or the status accessors;
// after reacquiring, the shared state is revalidated (another session may
// have recovered, opened the circuit, or Close()d the supervisor first) and
// a child that lost the race is discarded. s.mu is held again on every
// return path.
func (s *Supervisor) restartUnlocking(info *ExchangeInfo) error {
	d := s.cfg.BackoffBase
	for i := 0; i < s.restarts && d < s.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	// Jitter in [0.5, 1.5), derived from (seed, restart count): the
	// schedule is reproducible run to run, like every other delay in the
	// collection pipeline.
	rng := xrand.New(s.cfg.Seed).Split(0xc0517).Split(uint64(s.restarts) + 1)
	d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	s.restarts++
	attempt := s.restarts
	pinModel, pinExact := s.model, s.exact
	s.mu.Unlock()
	time.Sleep(d)
	c, model, exact, err := s.spawn(pinModel, pinExact)
	s.mu.Lock()
	if s.closed || s.open || s.c != nil {
		// Lost the race: the caller's loop re-reads the new state; our own
		// child (if it came up) is surplus.
		if err == nil {
			//mblint:ignore mutexhold the surplus child is killed before Wait, which then reaps promptly off its closed pipes
			killChild(c)
		}
		return nil
	}
	if err != nil {
		return err
	}
	s.c, s.model, s.exact = c, model, exact
	info.Notes = append(info.Notes, fmt.Sprintf("cosim: restarted %s (restart %d)", s.cfg.Command[0], attempt))
	return nil
}

// spawn starts a child process and completes the handshake, pinning the
// model identity against (pinModel, pinExact) when a previous handshake set
// them. Called without s.mu held (it can block up to the handshake timeout);
// it touches only the immutable s.cfg, never the guarded state.
func (s *Supervisor) spawn(pinModel string, pinExact bool) (*child, string, bool, error) {
	cmd := exec.Command(s.cfg.Command[0], s.cfg.Command[1:]...)
	if s.cfg.Env != nil {
		cmd.Env = append(cmd.Environ(), s.cfg.Env...)
	}
	cmd.Stderr = s.cfg.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, "", false, fmt.Errorf("cosim: child stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", false, fmt.Errorf("cosim: child stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, "", false, fmt.Errorf("cosim: starting %s: %w", s.cfg.Command[0], err)
	}
	c := &child{cmd: cmd, stdin: stdin, lines: make(chan []byte, 4)}
	go readLines(stdout, c.lines)
	model, exact, err := s.handshake(c, pinModel, pinExact)
	if err != nil {
		killChild(c)
		return nil, "", false, err
	}
	return c, model, exact, nil
}

// readLines pumps the child's stdout lines into the channel, closing it on
// EOF — the supervisor's crash signal.
func readLines(r io.Reader, lines chan<- []byte) {
	defer close(lines)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxFrameBytes+4096)
	for sc.Scan() {
		lines <- append([]byte(nil), sc.Bytes()...)
	}
}

// handshake sends the hello and awaits a version-matching welcome within
// the handshake deadline, returning the child's announced (model, exact)
// identity. Version skew and rejects return a *SkewError (permanent);
// everything else is an ordinary failure the strike/restart machinery may
// recover from. Called without s.mu held.
func (s *Supervisor) handshake(c *child, pinModel string, pinExact bool) (string, bool, error) {
	memHW, storHW := s.cfg.MemHW, s.cfg.StorHW
	hello := Frame{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW}
	f, err := s.roundTrip(c, hello, s.cfg.HandshakeTimeout)
	if err != nil {
		return "", false, err
	}
	switch f.Type {
	case TypeWelcome:
		if f.Proto != ProtoVersion {
			return "", false, &SkewError{Reason: fmt.Sprintf("child speaks protocol %d, this build speaks %d", f.Proto, ProtoVersion)}
		}
		if pinModel != "" && (pinModel != f.Model || pinExact != f.Exact) {
			// The model identity is pinned at construction; a restarted
			// child announcing a different model would silently change the
			// dataset mid-run.
			return "", false, &SkewError{Reason: fmt.Sprintf("child model changed from %q to %q across restart", pinModel, f.Model)}
		}
		return f.Model, f.Exact, nil
	case TypeReject:
		return "", false, &SkewError{Reason: "child rejected the handshake: " + f.Error}
	default:
		return "", false, &ProtoError{Reason: fmt.Sprintf("expected welcome, got %q", f.Type)}
	}
}

// exchangeOnceLocked performs one batch round trip against the live child.
func (s *Supervisor) exchangeOnceLocked(queries []Query) ([]Reply, error) {
	id := s.nextID
	s.nextID++
	f, err := s.roundTrip(s.c, Frame{Type: TypeBatch, ID: id, Queries: queries}, s.cfg.QueryTimeout)
	if err != nil {
		return nil, err
	}
	if f.Type != TypeReplies {
		return nil, &ProtoError{Reason: fmt.Sprintf("expected replies, got %q", f.Type)}
	}
	if f.ID != id {
		return nil, &ProtoError{Reason: fmt.Sprintf("replies for batch %d, expected %d", f.ID, id)}
	}
	if len(f.Replies) != len(queries) {
		return nil, &ProtoError{Reason: fmt.Sprintf("%d replies for %d queries", len(f.Replies), len(queries))}
	}
	for i, r := range f.Replies {
		switch queries[i].Kind {
		case KindMem:
			if r.Mem == nil {
				return nil, &ProtoError{Reason: fmt.Sprintf("reply %d misses the mem result", i)}
			}
		case KindIO:
			if r.IO == nil {
				return nil, &ProtoError{Reason: fmt.Sprintf("reply %d misses the io result", i)}
			}
		}
		// The degraded marker is supervisor provenance, not wire data: a
		// child cannot declare its own replies fallback-computed.
		f.Replies[i].Degraded = false
	}
	return f.Replies, nil
}

// roundTrip writes one frame and awaits the next within the deadline. A
// timeout (hung child), closed line channel (crashed child) or unparsable
// line (garbage) is an error the caller converts into a strike.
func (s *Supervisor) roundTrip(c *child, out Frame, timeout time.Duration) (Frame, error) {
	data, err := EncodeFrame(out)
	if err != nil {
		return Frame{}, err
	}
	if _, err := c.stdin.Write(data); err != nil {
		return Frame{}, fmt.Errorf("cosim: writing to child: %w", err)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case line, ok := <-c.lines:
		if !ok {
			return Frame{}, fmt.Errorf("cosim: child exited (EOF on its stdout)")
		}
		return ParseFrame(line)
	case <-t.C:
		return Frame{}, fmt.Errorf("cosim: child did not answer within %v (hang)", timeout)
	}
}

// killLocked tears the current child down (idempotent).
func (s *Supervisor) killLocked() {
	if s.c == nil {
		return
	}
	killChild(s.c)
	s.c = nil
}

func killChild(c *child) {
	_ = c.stdin.Close()
	if c.cmd.Process != nil {
		_ = c.cmd.Process.Kill()
	}
	// Reap the process and drain the reader; both complete promptly after
	// the kill closed the pipes.
	_ = c.cmd.Wait()
	for range c.lines {
	}
}
