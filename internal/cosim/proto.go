// Package cosim is the supervised external-process timing backend: a
// sim.TimingProvider that answers the engine's memory/storage timing
// queries by co-simulating with a child process over a versioned JSON-lines
// protocol on the child's stdin/stdout.
//
// The protocol keeps the child a pure function server. Model state travels
// inside each query as an opaque document the parent threads from the
// previous reply, so the child holds no conversation state at all: queries
// from concurrent runs may interleave freely, a restarted child resumes
// mid-run without warm-up, and every accepted reply is cacheable by its
// query bytes — the property the deterministic replay log is built on.
//
//	parent → child   {"type":"hello","proto":1,"memory":{...},"storage":{...}}
//	child  → parent  {"type":"welcome","proto":1,"model":"analytic","exact":true}
//	                 (or {"type":"reject","error":"..."})
//	parent → child   {"type":"batch","id":7,"queries":[{"kind":"mem",...},{"kind":"io",...}]}
//	child  → parent  {"type":"replies","id":7,"replies":[{...},{...}]}
//
// Failure handling lives entirely in the parent-side Supervisor: per-query
// deadlines, EOF crash detection, capped deterministically-jittered restart
// backoff, and a circuit breaker that degrades to the in-process analytic
// models after repeated strikes — recorded in the run's provenance.
package cosim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

// ProtoVersion is the wire-protocol version this build speaks. A welcome
// carrying any other version is a permanent handshake failure — version
// skew never burns restart strikes, because restarting cannot fix it.
const ProtoVersion = 1

// MaxFrameBytes bounds one encoded frame. Timing queries and replies are
// small JSON documents; anything larger is a protocol error, not a buffer
// to grow for.
const MaxFrameBytes = 1 << 20

// Frame types.
const (
	TypeHello   = "hello"   // parent → child: handshake open, carries the HW description
	TypeWelcome = "welcome" // child → parent: handshake accept, names the model
	TypeReject  = "reject"  // child → parent: handshake refuse
	TypeBatch   = "batch"   // parent → child: answer these timing queries
	TypeReplies = "replies" // child → parent: the batch's replies, in query order
)

// Query kinds.
const (
	// KindMem asks for one memory-occupancy step (mem.StepFrom).
	KindMem = "mem"
	// KindIO asks for one storage-service step (mem.ServiceIO).
	KindIO = "io"
)

// Query is one timing question. State is the opaque model-state document
// the previous reply of the same kind returned (absent on the first step of
// a run), threaded by the parent so the child stays stateless.
type Query struct {
	Kind string `json:"kind"`
	// DT is the tick length in seconds.
	DT float64 `json:"dt"`
	// Target is the phase's target footprint (mem queries).
	Target *mem.Footprint `json:"target,omitempty"`
	// IO is the phase's storage demand (io queries).
	IO *mem.IODemand `json:"io,omitempty"`
	// State is the opaque model state threaded from the previous reply.
	State json.RawMessage `json:"state,omitempty"`
}

// Reply answers one Query, in batch order.
type Reply struct {
	// Mem is the memory result (mem queries).
	Mem *mem.Result `json:"mem,omitempty"`
	// IO is the storage result (io queries).
	IO *mem.IOResult `json:"io,omitempty"`
	// State is the model state to thread into the kind's next query.
	State json.RawMessage `json:"state,omitempty"`
	// Degraded marks a reply computed by the supervisor's in-process
	// fallback instead of the child. It is supervisor provenance, not wire
	// data — the supervisor clears it on every child reply — but it
	// persists in the replay log, so a logged fallback reply keeps its
	// degraded provenance when a later (healthy) run replays it.
	Degraded bool `json:"degraded,omitempty"`
}

// Frame is one protocol message. Which fields are meaningful depends on
// Type; Validate enforces the per-type requirements. Unknown fields are
// ignored on decode, so older parents interoperate with newer children.
type Frame struct {
	Type string `json:"type"`
	// Proto is the protocol version (hello, welcome).
	Proto int `json:"proto,omitempty"`
	// Memory and Storage describe the simulated hardware (hello); the
	// child computes against exactly this platform.
	Memory  *soc.Memory  `json:"memory,omitempty"`
	Storage *soc.Storage `json:"storage,omitempty"`
	// Model names the child's timing model (welcome).
	Model string `json:"model,omitempty"`
	// Exact marks a model whose replies are bit-identical to the
	// in-process analytic path (welcome). Exact backends share checkpoint
	// fingerprints with in-process collection; others get their own.
	Exact bool `json:"exact,omitempty"`
	// ID matches replies to their batch (batch, replies).
	ID uint64 `json:"id,omitempty"`
	// Queries carries the batch's questions (batch).
	Queries []Query `json:"queries,omitempty"`
	// Replies carries the answers in query order (replies).
	Replies []Reply `json:"replies,omitempty"`
	// Error is the failure cause (reject).
	Error string `json:"error,omitempty"`
}

// ProtoError reports a frame that failed decoding or validation. The
// supervisor counts it as a strike against the child that produced it.
type ProtoError struct {
	Reason string
}

// Error implements error.
func (e *ProtoError) Error() string { return "cosim: protocol error: " + e.Reason }

// ParseFrame decodes and validates one frame line. It never panics on any
// input: malformed JSON, oversized lines, unknown types and frames missing
// their type's required fields all return a *ProtoError.
func ParseFrame(line []byte) (Frame, error) {
	var f Frame
	if len(line) > MaxFrameBytes {
		return f, &ProtoError{Reason: fmt.Sprintf("frame of %d bytes exceeds the %d-byte bound", len(line), MaxFrameBytes)}
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&f); err != nil {
		return Frame{}, &ProtoError{Reason: "undecodable frame: " + err.Error()}
	}
	// One object per line: trailing non-space bytes are a framing bug, not
	// data to be silently dropped.
	if dec.More() {
		return Frame{}, &ProtoError{Reason: "trailing data after the frame object"}
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// Validate enforces the per-type required fields.
func (f Frame) Validate() error {
	switch f.Type {
	case TypeHello:
		if f.Proto <= 0 {
			return &ProtoError{Reason: "hello without a positive proto version"}
		}
		if f.Memory == nil || f.Storage == nil {
			return &ProtoError{Reason: "hello without the memory and storage hardware description"}
		}
	case TypeWelcome:
		if f.Proto <= 0 {
			return &ProtoError{Reason: "welcome without a positive proto version"}
		}
		if f.Model == "" {
			return &ProtoError{Reason: "welcome without a model name"}
		}
	case TypeReject:
		if f.Error == "" {
			return &ProtoError{Reason: "reject without an error"}
		}
	case TypeBatch:
		if len(f.Queries) == 0 {
			return &ProtoError{Reason: "batch without queries"}
		}
		for i, q := range f.Queries {
			if err := q.validate(); err != nil {
				return &ProtoError{Reason: fmt.Sprintf("batch query %d: %v", i, err)}
			}
		}
	case TypeReplies:
		if len(f.Replies) == 0 {
			return &ProtoError{Reason: "replies without replies"}
		}
		for i, r := range f.Replies {
			if len(r.State) > 0 && !json.Valid(r.State) {
				return &ProtoError{Reason: fmt.Sprintf("reply %d carries an invalid state document", i)}
			}
		}
	case "":
		return &ProtoError{Reason: "frame without a type"}
	default:
		return &ProtoError{Reason: fmt.Sprintf("unknown frame type %q", f.Type)}
	}
	return nil
}

func (q Query) validate() error {
	switch q.Kind {
	case KindMem:
		if q.Target == nil {
			return fmt.Errorf("mem query without a target footprint")
		}
	case KindIO:
		if q.IO == nil {
			return fmt.Errorf("io query without a demand")
		}
	default:
		return fmt.Errorf("unknown query kind %q", q.Kind)
	}
	if q.DT <= 0 {
		return fmt.Errorf("query without a positive dt")
	}
	if len(q.State) > 0 && !json.Valid(q.State) {
		return fmt.Errorf("query carries an invalid state document")
	}
	return nil
}

// EncodeFrame serializes a validated frame as one newline-terminated JSON
// line, the exact bytes ParseFrame accepts back.
func EncodeFrame(f Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil, &ProtoError{Reason: "unencodable frame: " + err.Error()}
	}
	if len(data) > MaxFrameBytes {
		return nil, &ProtoError{Reason: fmt.Sprintf("frame of %d bytes exceeds the %d-byte bound", len(data), MaxFrameBytes)}
	}
	return append(data, '\n'), nil
}

// queryKey renders a query's canonical replay-log key: the full encoded
// query document. Keying by the complete bytes (not a hash fold) makes
// cache collisions impossible rather than merely improbable — two distinct
// queries can never serve each other's replies. Go's encoding/json renders
// float64 values with the shortest round-tripping decimal, so equal inputs
// key identically across processes.
func queryKey(q Query) (string, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return "", &ProtoError{Reason: "unencodable query: " + err.Error()}
	}
	return string(data), nil
}
