package cosim_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mobilebench/internal/cosim"
	"mobilebench/internal/fault"
	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

// TestMain doubles as the external timing-model child: when re-exec'd with
// MBCOSIM_CHILD=1 the test binary serves the cosim protocol on its
// stdin/stdout instead of running tests — the same re-exec pattern real
// deployments use with cmd/mbtiming, but available under -race and without
// building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("MBCOSIM_CHILD") == "1" {
		chaos, err := fault.ParseCosim(os.Getenv("MBCOSIM_CHAOS"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cosim child:", err)
			os.Exit(2)
		}
		err = cosim.Serve(os.Stdin, os.Stdout, cosim.ServeOptions{
			Model: os.Getenv("MBCOSIM_MODEL"),
			Chaos: chaos,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cosim child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childConfig builds a supervisor config that re-execs this test binary as
// the child, with fast backoff so chaos tests stay quick.
func childConfig(model, chaos string) cosim.Config {
	p := soc.Snapdragon888HDK()
	env := []string{"MBCOSIM_CHILD=1"}
	if model != "" {
		env = append(env, "MBCOSIM_MODEL="+model)
	}
	if chaos != "" {
		env = append(env, "MBCOSIM_CHAOS="+chaos)
	}
	return cosim.Config{
		Command:     []string{os.Args[0]},
		Env:         env,
		MemHW:       p.Memory,
		StorHW:      p.Storage,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
	}
}

func newSupervisor(t *testing.T, cfg cosim.Config) *cosim.Supervisor {
	t.Helper()
	sup, err := cosim.NewSupervisor(cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	t.Cleanup(func() { sup.Close() })
	return sup
}

// distinctQueries returns n distinct single-query batches with their
// expected analytic replies.
func distinctQueries(n int) ([]cosim.Query, []mem.IOResult) {
	p := soc.Snapdragon888HDK()
	queries := make([]cosim.Query, n)
	want := make([]mem.IOResult, n)
	for i := range queries {
		d := mem.IODemand{SeqReadMBs: float64(100 + i)}
		queries[i] = cosim.Query{Kind: cosim.KindIO, DT: 0.1, IO: &d}
		want[i] = mem.ServiceIO(p.Storage, d, 0.1)
	}
	return queries, want
}

// exchangeOne asks one query and asserts the reply matches the in-process
// analytic math.
func exchangeOne(t *testing.T, sup *cosim.Supervisor, q cosim.Query, want mem.IOResult) cosim.ExchangeInfo {
	t.Helper()
	reps, info, err := sup.Exchange([]cosim.Query{q})
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if len(reps) != 1 || reps[0].IO == nil {
		t.Fatalf("replies = %+v", reps)
	}
	if !reflect.DeepEqual(*reps[0].IO, want) {
		t.Fatalf("reply drifted from the analytic math:\n got %+v\nwant %+v", *reps[0].IO, want)
	}
	return info
}

// TestSupervisorCleanExchange: a healthy child answers with the exact
// analytic bytes and no supervision events.
func TestSupervisorCleanExchange(t *testing.T) {
	sup := newSupervisor(t, childConfig("", ""))
	if sup.Model() != cosim.ModelAnalytic || !sup.Exact() {
		t.Fatalf("handshake: model %q exact %v", sup.Model(), sup.Exact())
	}
	qs, want := distinctQueries(3)
	for i, q := range qs {
		info := exchangeOne(t, sup, q, want[i])
		if len(info.Notes) != 0 || info.Degraded {
			t.Fatalf("clean exchange reported events: %+v", info)
		}
	}
	if sup.Degraded() {
		t.Fatal("healthy supervisor reports degraded")
	}
}

// TestSupervisorCrashRestart: a child killed mid-run is restarted and the
// lost batch re-asked — same bytes, one restart note, no degradation.
func TestSupervisorCrashRestart(t *testing.T) {
	sup := newSupervisor(t, childConfig("", "kill_batch=2"))
	qs, want := distinctQueries(3)
	exchangeOne(t, sup, qs[0], want[0])
	// Batch 2 kills the child; the supervisor must restart and recover.
	info := exchangeOne(t, sup, qs[1], want[1])
	if !notesContain(info.Notes, "restarted") {
		t.Fatalf("no restart note after a crash: %+v", info.Notes)
	}
	if info.Degraded {
		t.Fatal("one crash degraded the supervisor")
	}
	// The replacement child counts its own batches: its batch 2 dies too,
	// proving restarts are not a one-shot.
	info = exchangeOne(t, sup, qs[2], want[2])
	if !notesContain(info.Notes, "restarted") {
		t.Fatalf("no restart note after the second crash: %+v", info.Notes)
	}
	if sup.Degraded() {
		t.Fatal("supervisor degraded despite strikes below the budget... MaxStrikes misconfigured?")
	}
}

// TestSupervisorHangStrike: a hung child trips the per-query deadline, is
// killed and replaced.
func TestSupervisorHangStrike(t *testing.T) {
	cfg := childConfig("", "hang_batch=2,hang_sec=30")
	cfg.QueryTimeout = 100 * time.Millisecond
	cfg.MaxStrikes = 5
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(2)
	exchangeOne(t, sup, qs[0], want[0])
	start := time.Now()
	info := exchangeOne(t, sup, qs[1], want[1])
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang recovery took %v — the deadline did not fire", elapsed)
	}
	if !notesContain(info.Notes, "hang") {
		t.Fatalf("no hang strike note: %+v", info.Notes)
	}
	if sup.Degraded() {
		t.Fatal("one hang degraded the supervisor")
	}
}

// TestSupervisorGarbageStrike: an unparsable frame is a strike, not a
// panic, and the replacement child answers the re-ask.
func TestSupervisorGarbageStrike(t *testing.T) {
	cfg := childConfig("", "garbage_batch=2")
	cfg.MaxStrikes = 5
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(2)
	exchangeOne(t, sup, qs[0], want[0])
	info := exchangeOne(t, sup, qs[1], want[1])
	if !notesContain(info.Notes, "strike") {
		t.Fatalf("no strike note after garbage: %+v", info.Notes)
	}
	if sup.Degraded() {
		t.Fatal("one garbage frame degraded the supervisor")
	}
}

// TestSupervisorSlowReplyWithinDeadline: a slow but in-deadline reply is
// not a fault.
func TestSupervisorSlowReplyWithinDeadline(t *testing.T) {
	cfg := childConfig("", "slow_batch=1,slow_sec=0.05")
	cfg.QueryTimeout = 2 * time.Second
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(1)
	info := exchangeOne(t, sup, qs[0], want[0])
	if len(info.Notes) != 0 {
		t.Fatalf("in-deadline slow reply reported events: %+v", info.Notes)
	}
}

// TestSupervisorSlowReplySkew: a reply slower than the deadline is
// indistinguishable from a hang and handled the same way.
func TestSupervisorSlowReplySkew(t *testing.T) {
	cfg := childConfig("", "slow_batch=2,slow_sec=30")
	cfg.QueryTimeout = 100 * time.Millisecond
	cfg.MaxStrikes = 5
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(2)
	exchangeOne(t, sup, qs[0], want[0])
	info := exchangeOne(t, sup, qs[1], want[1])
	if !notesContain(info.Notes, "strike") {
		t.Fatalf("no strike after an over-deadline reply: %+v", info.Notes)
	}
}

// TestSupervisorCircuitBreaks: a child that dies on every batch exhausts
// the strike budget; the circuit opens and the in-process fallback answers
// with the same bytes.
func TestSupervisorCircuitBreaks(t *testing.T) {
	cfg := childConfig("", "kill_every=1")
	cfg.MaxStrikes = 3
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(2)
	info := exchangeOne(t, sup, qs[0], want[0])
	if !info.Degraded {
		t.Fatalf("exchange against an always-dying child not degraded: %+v", info)
	}
	if !notesContain(info.Notes, "circuit opened") {
		t.Fatalf("no circuit note: %+v", info.Notes)
	}
	if !sup.Degraded() {
		t.Fatal("supervisor does not report the open circuit")
	}
	// Further exchanges answer directly from the fallback — degraded, but
	// without re-spawning (no new notes beyond the degradation itself).
	info = exchangeOne(t, sup, qs[1], want[1])
	if !info.Degraded || len(info.Notes) != 0 {
		t.Fatalf("post-break exchange: %+v", info)
	}
}

// TestSupervisorVersionSkewAtStart: a child speaking another protocol
// version fails construction loudly — at CLI time, not mid-collection.
func TestSupervisorVersionSkewAtStart(t *testing.T) {
	_, err := cosim.NewSupervisor(childConfig("", "skew_version=true"))
	if err == nil {
		t.Fatal("NewSupervisor accepted a version-skewed child")
	}
	if _, ok := err.(*cosim.SkewError); !ok {
		t.Fatalf("error is %T (%v), want *SkewError", err, err)
	}
}

// TestSupervisorVersionSkewOnRestart: a child that crashes and comes back
// speaking a different protocol (binary upgraded under us) opens the
// circuit permanently without burning through strikes.
func TestSupervisorVersionSkewOnRestart(t *testing.T) {
	spawnFile := filepath.Join(t.TempDir(), "spawns")
	cfg := childConfig("", "kill_batch=2,skew_after_spawns=1,spawn_file="+spawnFile)
	cfg.MaxStrikes = 100 // the skew must not need the strike budget
	sup := newSupervisor(t, cfg)
	qs, want := distinctQueries(2)
	info := exchangeOne(t, sup, qs[0], want[0])
	if info.Degraded {
		t.Fatal("first exchange degraded")
	}
	// Batch 2 kills the child; the respawned child (spawn 2) welcomes with
	// a skewed version, which must open the circuit immediately.
	info = exchangeOne(t, sup, qs[1], want[1])
	if !info.Degraded {
		t.Fatalf("skewed restart did not degrade: %+v", info)
	}
	if !notesContain(info.Notes, "circuit opened") {
		t.Fatalf("no circuit note: %+v", info.Notes)
	}
	if !sup.Degraded() {
		t.Fatal("supervisor does not report the open circuit")
	}
}

// TestSupervisorReplayLogReuse: replies logged in one supervisor's life
// are served from the log by the next — even to a child that would
// misbehave — so resumed runs never depend on the child's health for
// already-answered queries.
func TestSupervisorReplayLogReuse(t *testing.T) {
	replay := filepath.Join(t.TempDir(), "replay.log")
	qs, want := distinctQueries(4)

	cfg := childConfig("", "")
	cfg.ReplayPath = replay
	sup := newSupervisor(t, cfg)
	for i, q := range qs {
		exchangeOne(t, sup, q, want[i])
	}
	if err := sup.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A second supervisor over the same log, with a child that answers
	// every batch with garbage and a one-strike budget: any query actually
	// reaching the child would open the circuit. All four must replay.
	cfg2 := childConfig("", "garbage_batch=1")
	cfg2.ReplayPath = replay
	cfg2.MaxStrikes = 1
	sup2 := newSupervisor(t, cfg2)
	for i, q := range qs {
		info := exchangeOne(t, sup2, q, want[i])
		if info.Degraded || len(info.Notes) != 0 {
			t.Fatalf("query %d was not served from the replay log: %+v", i, info)
		}
	}
	if sup2.Degraded() {
		t.Fatal("replayed exchanges opened the circuit")
	}
}

// TestSupervisorReplayKeepsDegradedProvenance: replies computed by the
// circuit-break fallback are logged with their degraded marker, and a later
// supervisor replaying them — even one whose own child is perfectly healthy
// and whose circuit never opens — reports the replayed data as degraded.
// Without this, a resumed run under a non-exact model would carry
// analytic-fallback bytes while its provenance claimed a healthy child.
func TestSupervisorReplayKeepsDegradedProvenance(t *testing.T) {
	replay := filepath.Join(t.TempDir(), "replay.log")
	qs, want := distinctQueries(2)

	// First life: every batch kills the child, the circuit opens, and the
	// fallback's replies land in the log.
	cfg := childConfig("", "kill_every=1")
	cfg.ReplayPath = replay
	cfg.MaxStrikes = 1
	sup := newSupervisor(t, cfg)
	info := exchangeOne(t, sup, qs[0], want[0])
	if !info.Degraded {
		t.Fatalf("fallback exchange not degraded: %+v", info)
	}
	if err := sup.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Second life: healthy child, same log. The logged query must replay
	// with its degraded provenance intact; a fresh query answered by the
	// live child must stay clean.
	cfg2 := childConfig("", "")
	cfg2.ReplayPath = replay
	sup2 := newSupervisor(t, cfg2)
	info = exchangeOne(t, sup2, qs[0], want[0])
	if !info.Degraded {
		t.Fatal("replayed fallback reply lost its degraded provenance")
	}
	if sup2.Degraded() {
		t.Fatal("replaying a degraded reply must not open the healthy supervisor's circuit")
	}
	info = exchangeOne(t, sup2, qs[1], want[1])
	if info.Degraded || len(info.Notes) != 0 {
		t.Fatalf("fresh child-answered exchange reported events: %+v", info)
	}
}

// TestProviderPlatformMismatch: a session for different hardware than the
// handshake pinned is refused.
func TestProviderPlatformMismatch(t *testing.T) {
	p, err := cosim.NewProvider(childConfig("", ""))
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	defer p.Close()
	if fp := p.Fingerprint(); fp != "" {
		t.Fatalf("exact analytic child fingerprints as %q, want \"\"", fp)
	}
	plat := soc.Snapdragon888HDK()
	other := plat.Memory
	other.TotalMB += 1024
	if _, err := p.NewTimingModel(other, plat.Storage); err == nil {
		t.Fatal("NewTimingModel accepted mismatched hardware")
	}
}

func notesContain(notes []string, substr string) bool {
	for _, n := range notes {
		if strings.Contains(n, substr) {
			return true
		}
	}
	return false
}
