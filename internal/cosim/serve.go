// The child side of the protocol: Serve is the loop cmd/mbtiming (and the
// test re-exec child) runs — read the hello, answer with a welcome naming
// the model, then answer batches until stdin closes. ServeOptions.Chaos
// turns the child into a deliberately misbehaving one for supervision
// tests: killing itself, hanging, emitting garbage, replying slowly or
// claiming a skewed protocol version on schedule.
package cosim

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mobilebench/internal/checkpoint"
	"mobilebench/internal/fault"
)

// ServeOptions configures one child process.
type ServeOptions struct {
	// Model names the timing model to serve ("" = analytic).
	Model string
	// Chaos schedules deliberate misbehavior (tests).
	Chaos fault.CosimConfig
}

// Serve runs the child loop: handshake, then batches until r reaches EOF
// (the parent closed our stdin — a normal shutdown). Protocol errors are
// returned; the caller exits non-zero so the parent's supervision sees a
// crash rather than a silent wedge.
func Serve(r io.Reader, w io.Writer, opts ServeOptions) error {
	if opts.Model == "" {
		opts.Model = ModelAnalytic
	}
	spawn, err := bumpSpawnCount(opts.Chaos.SpawnFile)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxFrameBytes+4096)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("cosim: reading hello: %w", err)
		}
		return nil // EOF before hello: parent went away, clean exit
	}
	hello, err := ParseFrame(sc.Bytes())
	if err != nil {
		return err
	}
	if hello.Type != TypeHello {
		return &ProtoError{Reason: fmt.Sprintf("expected hello, got %q", hello.Type)}
	}
	if hello.Proto != ProtoVersion {
		writeFrame(w, Frame{Type: TypeReject, Error: fmt.Sprintf("parent speaks protocol %d, this child speaks %d", hello.Proto, ProtoVersion)})
		return &ProtoError{Reason: fmt.Sprintf("parent protocol %d unsupported", hello.Proto)}
	}
	answer, exact, err := modelFor(opts.Model, *hello.Memory, *hello.Storage)
	if err != nil {
		writeFrame(w, Frame{Type: TypeReject, Error: err.Error()})
		return err
	}
	proto := ProtoVersion
	if opts.Chaos.SkewVersion || (opts.Chaos.SkewAfterSpawns > 0 && spawn > opts.Chaos.SkewAfterSpawns) {
		proto = ProtoVersion + 100
	}
	if err := writeFrame(w, Frame{Type: TypeWelcome, Proto: proto, Model: opts.Model, Exact: exact}); err != nil {
		return err
	}
	batch := 0
	for sc.Scan() {
		f, err := ParseFrame(sc.Bytes())
		if err != nil {
			return err
		}
		if f.Type != TypeBatch {
			return &ProtoError{Reason: fmt.Sprintf("expected batch, got %q", f.Type)}
		}
		batch++
		plan := opts.Chaos.PlanForBatch(batch)
		if plan.Kill {
			os.Exit(3)
		}
		if plan.Hang {
			sleep(plan.HangSec)
		}
		if plan.Garbage {
			if _, err := io.WriteString(w, "}{ not a frame\n"); err != nil {
				return err
			}
			continue
		}
		reps := make([]Reply, len(f.Queries))
		for i, q := range f.Queries {
			if reps[i], err = answer(q); err != nil {
				return err
			}
		}
		if plan.SlowSec > 0 {
			sleep(plan.SlowSec)
		}
		if err := writeFrame(w, Frame{Type: TypeReplies, ID: f.ID, Replies: reps}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cosim: reading batches: %w", err)
	}
	return nil
}

func writeFrame(w io.Writer, f Frame) error {
	data, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func sleep(sec float64) {
	t := time.NewTimer(time.Duration(sec * float64(time.Second)))
	<-t.C
}

// bumpSpawnCount increments the cross-process spawn counter ("" = no
// counting, spawn 1). Chaos specs use it to misbehave only from the Nth
// process on — e.g. version-skew the restarted child but not the first.
func bumpSpawnCount(path string) (int, error) {
	if path == "" {
		return 1, nil
	}
	n := 0
	if data, err := os.ReadFile(path); err == nil {
		if v, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil {
			n = v
		}
	}
	n++
	if err := checkpoint.WriteFile(path, []byte(strconv.Itoa(n)), 0o644); err != nil {
		return 0, err
	}
	return n, nil
}
