package cosim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mobilebench/internal/mem"
	"mobilebench/internal/soc"
)

func testHW() (soc.Memory, soc.Storage) {
	p := soc.Snapdragon888HDK()
	return p.Memory, p.Storage
}

func testMemQuery() Query {
	return Query{Kind: KindMem, DT: 0.1, Target: &mem.Footprint{}}
}

func testIOQuery() Query {
	return Query{Kind: KindIO, DT: 0.1, IO: &mem.IODemand{SeqReadMBs: 100}}
}

// TestFrameRoundTrip: every frame type encodes to one line that parses back
// deep-equal.
func TestFrameRoundTrip(t *testing.T) {
	memHW, storHW := testHW()
	frames := []Frame{
		{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW},
		{Type: TypeWelcome, Proto: ProtoVersion, Model: ModelAnalytic, Exact: true},
		{Type: TypeReject, Error: "nope"},
		{Type: TypeBatch, ID: 7, Queries: []Query{testMemQuery(), testIOQuery()}},
		{Type: TypeReplies, ID: 7, Replies: []Reply{{Mem: &mem.Result{}}, {IO: &mem.IOResult{}, State: json.RawMessage(`{"backlog_mb":1}`)}}},
	}
	for _, f := range frames {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: EncodeFrame: %v", f.Type, err)
		}
		if data[len(data)-1] != '\n' {
			t.Fatalf("%s: frame is not newline-terminated", f.Type)
		}
		got, err := ParseFrame(bytes.TrimSuffix(data, []byte("\n")))
		if err != nil {
			t.Fatalf("%s: ParseFrame: %v", f.Type, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("%s: round trip drifted:\n got %+v\nwant %+v", f.Type, got, f)
		}
	}
}

// TestParseFrameRejects: malformed lines return *ProtoError, never panic.
func TestParseFrameRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             ``,
		"not json":          `}{`,
		"no type":           `{}`,
		"unknown type":      `{"type":"quux"}`,
		"trailing data":     `{"type":"reject","error":"x"} {"type":"reject","error":"y"}`,
		"hello no proto":    `{"type":"hello"}`,
		"hello no hw":       `{"type":"hello","proto":1}`,
		"welcome no proto":  `{"type":"welcome","model":"analytic"}`,
		"welcome no model":  `{"type":"welcome","proto":1}`,
		"reject no error":   `{"type":"reject"}`,
		"batch empty":       `{"type":"batch","id":1}`,
		"batch bad kind":    `{"type":"batch","queries":[{"kind":"quux","dt":0.1}]}`,
		"mem no target":     `{"type":"batch","queries":[{"kind":"mem","dt":0.1}]}`,
		"io no demand":      `{"type":"batch","queries":[{"kind":"io","dt":0.1}]}`,
		"query zero dt":     `{"type":"batch","queries":[{"kind":"mem","dt":0,"target":{}}]}`,
		"replies empty":     `{"type":"replies","id":1}`,
		"wrong value type":  `{"type":"batch","queries":"zap"}`,
		"type not a string": `{"type":42}`,
	}
	for name, line := range cases {
		if _, err := ParseFrame([]byte(line)); err == nil {
			t.Errorf("%s: ParseFrame accepted %q", name, line)
		} else if _, ok := err.(*ProtoError); !ok {
			t.Errorf("%s: error is %T, want *ProtoError", name, err)
		}
	}
}

// TestParseFrameBoundsSize: an oversized line is refused before decoding.
func TestParseFrameBoundsSize(t *testing.T) {
	line := []byte(`{"type":"reject","error":"` + strings.Repeat("x", MaxFrameBytes) + `"}`)
	if _, err := ParseFrame(line); err == nil {
		t.Fatal("ParseFrame accepted an oversized frame")
	}
}

// TestParseFrameIgnoresUnknownFields: forward compatibility — a newer
// peer's extra fields must not break this parser.
func TestParseFrameIgnoresUnknownFields(t *testing.T) {
	f, err := ParseFrame([]byte(`{"type":"welcome","proto":1,"model":"analytic","future_field":{"a":1}}`))
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if f.Model != ModelAnalytic {
		t.Fatalf("model = %q", f.Model)
	}
}

// TestQueryKeyCanonical: equal queries key identically, distinct queries
// never collide (the key is the full query document).
func TestQueryKeyCanonical(t *testing.T) {
	a1, err := queryKey(testMemQuery())
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := queryKey(testMemQuery())
	if a1 != a2 {
		t.Fatalf("equal queries keyed differently: %q vs %q", a1, a2)
	}
	b := testMemQuery()
	b.DT = 0.2
	bk, _ := queryKey(b)
	if bk == a1 {
		t.Fatal("distinct queries share a key")
	}
	c := testMemQuery()
	c.State = json.RawMessage(`{"UsedMB":1}`)
	ck, _ := queryKey(c)
	if ck == a1 {
		t.Fatal("queries with distinct state share a key")
	}
}

// FuzzCosimParseFrame: the parser never panics on any input, and every
// accepted frame re-encodes to a fixed point — parse(encode(parse(x)))
// yields the same bytes as encode(parse(x)), so logged and re-sent frames
// are stable.
func FuzzCosimParseFrame(f *testing.F) {
	memHW, storHW := testHW()
	for _, fr := range []Frame{
		{Type: TypeHello, Proto: ProtoVersion, Memory: &memHW, Storage: &storHW},
		{Type: TypeWelcome, Proto: ProtoVersion, Model: ModelQDRAM},
		{Type: TypeBatch, ID: 3, Queries: []Query{testMemQuery(), testIOQuery()}},
		{Type: TypeReplies, ID: 3, Replies: []Reply{{Mem: &mem.Result{}}}},
		{Type: TypeReject, Error: "skew"},
	} {
		data, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"type":"batch","queries":[{"kind":"mem","dt":1e-9,"target":{},"state":{}}]}`))
	f.Add([]byte(`{"type":"hello","proto":-1}`))
	f.Add([]byte(`}{ not a frame`))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := ParseFrame(line)
		if err != nil {
			return
		}
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		fr2, err := ParseFrame(bytes.TrimSuffix(enc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded frame does not re-parse: %v", err)
		}
		enc2, err := EncodeFrame(fr2)
		if err != nil {
			t.Fatalf("re-parsed frame does not encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n 1st %s\n 2nd %s", enc, enc2)
		}
	})
}
