package cache

import (
	"mobilebench/internal/xrand"
)

// AccessPattern parameterizes the synthetic memory reference stream of a
// workload phase. It is a compact statistical stand-in for an address trace:
// a mix of sequential (streaming) accesses and reuse accesses drawn from a
// skewed distribution over the working set.
type AccessPattern struct {
	// WorkingSetBytes is the size of the region the phase actively touches.
	WorkingSetBytes uint64
	// SequentialFrac is the fraction of accesses that stream linearly
	// (high spatial locality). The rest are reuse accesses over the
	// working set.
	SequentialFrac float64
	// ReuseSkew is the Zipf exponent of the reuse distribution; larger
	// values concentrate accesses on a hot subset (high temporal
	// locality). 0 means uniform.
	ReuseSkew float64
	// StridedFrac of the non-sequential accesses use a large power-of-two
	// stride, defeating spatial locality (matrix-column walks, hash
	// probes).
	StridedFrac float64
	// HotFrac is the fraction of accesses that touch a small hot region
	// (stack frames, loop-local buffers, hot objects). Real programs
	// direct the large majority of references at a working set that fits
	// in L1; omitting this is the classic mistake that makes synthetic
	// streams miss an order of magnitude too often.
	HotFrac float64
	// HotBytes is the hot region size (default 24 KB when zero).
	HotBytes uint64
	// PrefetchCoverage is the fraction of sequential-stream misses hidden
	// by the hardware next-line/stride prefetcher. Prefetched lines still
	// occupy (and pollute) the caches; they just do not stall the core.
	PrefetchCoverage float64
}

// Clamp returns the pattern with all fields forced into valid ranges.
func (p AccessPattern) Clamp() AccessPattern {
	if p.WorkingSetBytes < 4096 {
		p.WorkingSetBytes = 4096
	}
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	p.SequentialFrac = clamp01(p.SequentialFrac)
	p.StridedFrac = clamp01(p.StridedFrac)
	p.HotFrac = clamp01(p.HotFrac)
	p.PrefetchCoverage = clamp01(p.PrefetchCoverage)
	if p.ReuseSkew < 0 {
		p.ReuseSkew = 0
	}
	if p.HotBytes == 0 {
		p.HotBytes = 24 * 1024
	}
	if p.HotBytes < 1024 {
		p.HotBytes = 1024
	}
	return p
}

// StreamGen draws addresses following an AccessPattern. The generator is
// stateful so sequential runs continue across batches, as a real program's
// streams do across profiler samples.
type StreamGen struct {
	pat    AccessPattern
	rng    *xrand.Rand
	cursor uint64 // sequential stream position
	base   uint64 // region base address (distinct per generator)
	// hotLines caches the number of distinct lines in the working set.
	lines uint64
	// Precomputed Zipf draw constants for the hot-region and reuse
	// distributions (bit-identical to calling rng.Zipf per access, minus
	// one math.Pow per draw — the dominant sampling cost).
	hotZipf   xrand.ZipfGen
	reuseZipf xrand.ZipfGen
}

// NewStreamGen builds a generator for the pattern. Each generator gets a
// distinct address region so that two cores' streams do not accidentally
// share lines unless the workload says so.
func NewStreamGen(pat AccessPattern, region uint64, rng *xrand.Rand) *StreamGen {
	pat = pat.Clamp()
	g := &StreamGen{
		pat:   pat,
		rng:   rng,
		base:  region << 40, // 1 TB-aligned region per generator
		lines: pat.WorkingSetBytes / 64,
	}
	g.hotZipf = xrand.NewZipfGen(int(pat.HotBytes/64), 0.8)
	g.reuseZipf = xrand.NewZipfGen(int(g.lines), pat.ReuseSkew)
	return g
}

// Pattern returns the generator's pattern.
func (g *StreamGen) Pattern() AccessPattern { return g.pat }

// SetWorkingSet rescales the working set (e.g. when a phase grows its
// footprint over time).
func (g *StreamGen) SetWorkingSet(bytes uint64) {
	if bytes < 4096 {
		bytes = 4096
	}
	g.pat.WorkingSetBytes = bytes
	g.lines = bytes / 64
	g.reuseZipf = xrand.NewZipfGen(int(g.lines), g.pat.ReuseSkew)
}

// Next returns the next address in the synthetic stream and whether it
// belongs to a sequential stream (and is therefore a prefetcher target).
func (g *StreamGen) Next() (addr uint64, sequential bool) {
	if g.rng.Bool(g.pat.HotFrac) {
		// Hot-region access: skewed references within a tiny buffer kept
		// in a separate sub-region so it stays resident.
		line := uint64(g.hotZipf.Draw(g.rng))
		return g.base + (1 << 30) + line*64 + g.rng.Uint64n(64)&^7, false
	}
	if g.rng.Bool(g.pat.SequentialFrac) {
		// Streaming access: walk forward one element (8 bytes), wrapping
		// inside the working set.
		g.cursor = (g.cursor + 8) % g.pat.WorkingSetBytes
		return g.base + g.cursor, true
	}
	var line uint64
	if g.pat.ReuseSkew > 0 {
		line = uint64(g.reuseZipf.Draw(g.rng))
	} else {
		line = g.rng.Uint64n(g.lines)
	}
	if g.rng.Bool(g.pat.StridedFrac) {
		// Large-stride access: spread over the set index bits so that
		// consecutive strided accesses conflict in the same ways.
		line = (line * 1024) % g.lines
	}
	return g.base + line*64 + g.rng.Uint64n(64)&^7, false
}

// Batch drives n accesses through the hierarchy and returns the per-level
// demand-miss counts observed for this batch ([L1 misses, L2 misses,
// L3 misses, SLC misses]). Misses on sequential accesses covered by the
// modelled prefetcher install their lines but are not counted — they do not
// stall the core.
func (g *StreamGen) Batch(h *Hierarchy, n int) [4]uint64 {
	var misses [4]uint64
	for i := 0; i < n; i++ {
		addr, seq := g.Next()
		depth := h.Access(addr)
		if seq && g.rng.Bool(g.pat.PrefetchCoverage) {
			continue
		}
		// depth d means levels 1..d-1 missed.
		for l := 1; l < depth && l <= 4; l++ {
			misses[l-1]++
		}
	}
	return misses
}

// Pollute streams n accesses through a single shared cache, modelling a
// non-CPU agent (the GPU) displacing lines; outcomes are not counted.
func (g *StreamGen) Pollute(c *Cache, n int) {
	for i := 0; i < n; i++ {
		addr, _ := g.Next()
		c.Access(addr)
	}
}
