package cache

import (
	"testing"
	"testing/quick"

	"mobilebench/internal/soc"
	"mobilebench/internal/xrand"
)

func smallGeom() soc.CacheGeometry {
	return soc.CacheGeometry{Name: "test", SizeBytes: 4096, LineBytes: 64, Ways: 2}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	_, err := New(soc.CacheGeometry{Name: "bad", SizeBytes: 100, LineBytes: 48, Ways: 3})
	if err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad geometry")
		}
	}()
	MustNew(soc.CacheGeometry{})
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(smallGeom())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access to same line missed")
	}
	if !c.Access(0x1038) { // same 64-byte line
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 accesses / 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: three distinct lines mapping to the same set must evict
	// the least recently used.
	c := MustNew(smallGeom())
	sets := uint64(smallGeom().Sets())
	stride := sets * 64 // same set index, different tags
	a, b, x := uint64(0), stride, 2*stride

	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now most recent
	c.Access(x) // should evict b
	if !c.Contains(a) {
		t.Fatal("most-recently-used line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Contains(x) {
		t.Fatal("new line not installed")
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	c := MustNew(smallGeom())
	c.Access(0x40)
	before := c.Stats()
	c.Contains(0x40)
	c.Contains(0x123456)
	if c.Stats() != before {
		t.Fatal("Contains changed statistics")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(smallGeom())
	c.Access(0x40)
	c.Flush()
	if c.Contains(0x40) {
		t.Fatal("line survived flush")
	}
	if c.Stats().Accesses != 0 {
		t.Fatal("stats survived flush")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := MustNew(smallGeom())
	c.Access(0x40)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if !c.Access(0x40) {
		t.Fatal("ResetStats evicted contents")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty stats should have ratio 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRatio() != 0.3 {
		t.Fatalf("ratio = %g", s.MissRatio())
	}
}

func newTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	p := soc.Snapdragon888HDK()
	l3 := MustNew(p.L3)
	slc := MustNew(p.SLC)
	h, err := NewHierarchy(p.Clusters[soc.Big], l3, slc)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyDepth(t *testing.T) {
	h := newTestHierarchy(t)
	if depth := h.Access(0x10000); depth != 5 {
		t.Fatalf("cold access served at depth %d, want 5 (DRAM)", depth)
	}
	if depth := h.Access(0x10000); depth != 1 {
		t.Fatalf("warm access served at depth %d, want 1 (L1)", depth)
	}
	if h.DRAMAccesses != 1 {
		t.Fatalf("DRAM accesses = %d, want 1", h.DRAMAccesses)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := newTestHierarchy(t)
	h.Access(0x20000)
	// Thrash L1 only: enough distinct lines to evict 0x20000 from L1
	// (64 KB) but not from L2 (1 MB).
	for i := uint64(0); i < 2048; i++ {
		h.Access(0x100000 + i*64)
	}
	if depth := h.Access(0x20000); depth != 2 {
		t.Fatalf("expected L2 hit (depth 2), got depth %d", depth)
	}
}

func TestHierarchyRequiresSharedLevels(t *testing.T) {
	p := soc.Snapdragon888HDK()
	if _, err := NewHierarchy(p.Clusters[soc.Big], nil, nil); err == nil {
		t.Fatal("nil shared levels accepted")
	}
}

func TestHierarchyFlushAndLevels(t *testing.T) {
	h := newTestHierarchy(t)
	h.Access(0x40)
	h.Flush()
	if h.DRAMAccesses != 0 {
		t.Fatal("flush kept DRAM counter")
	}
	levels := h.Levels()
	if len(levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(levels))
	}
}

func TestPatternClamp(t *testing.T) {
	p := AccessPattern{
		WorkingSetBytes:  1,
		SequentialFrac:   2,
		ReuseSkew:        -1,
		StridedFrac:      -0.5,
		HotFrac:          1.5,
		PrefetchCoverage: 3,
	}.Clamp()
	if p.WorkingSetBytes < 4096 {
		t.Error("working set not floored")
	}
	if p.SequentialFrac != 1 || p.StridedFrac != 0 || p.HotFrac != 1 || p.PrefetchCoverage != 1 {
		t.Errorf("fractions not clamped: %+v", p)
	}
	if p.ReuseSkew != 0 {
		t.Error("negative skew not clamped")
	}
	if p.HotBytes == 0 {
		t.Error("hot bytes not defaulted")
	}
}

func TestStreamDeterminism(t *testing.T) {
	pat := AccessPattern{WorkingSetBytes: 1 << 20, SequentialFrac: 0.5, HotFrac: 0.5}
	g1 := NewStreamGen(pat, 1, xrand.New(5))
	g2 := NewStreamGen(pat, 1, xrand.New(5))
	for i := 0; i < 1000; i++ {
		a1, s1 := g1.Next()
		a2, s2 := g2.Next()
		if a1 != a2 || s1 != s2 {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestStreamRegionsDisjoint(t *testing.T) {
	pat := AccessPattern{WorkingSetBytes: 1 << 20}
	g1 := NewStreamGen(pat, 1, xrand.New(5))
	g2 := NewStreamGen(pat, 2, xrand.New(5))
	a1, _ := g1.Next()
	a2, _ := g2.Next()
	if a1>>40 == a2>>40 {
		t.Fatal("distinct regions share an address range")
	}
}

func TestHotFracReducesMisses(t *testing.T) {
	p := soc.Snapdragon888HDK()
	run := func(hot float64) uint64 {
		l3 := MustNew(p.L3)
		slc := MustNew(p.SLC)
		h, _ := NewHierarchy(p.Clusters[soc.Big], l3, slc)
		g := NewStreamGen(AccessPattern{
			WorkingSetBytes: 64 << 20,
			HotFrac:         hot,
		}, 1, xrand.New(9))
		total := uint64(0)
		for i := 0; i < 10; i++ {
			m := g.Batch(h, 2000)
			for _, v := range m {
				total += v
			}
		}
		return total
	}
	cold, warm := run(0.1), run(0.9)
	if warm >= cold {
		t.Fatalf("hot fraction did not reduce misses: hot=0.9 %d vs hot=0.1 %d", warm, cold)
	}
}

func TestPrefetchReducesCountedMisses(t *testing.T) {
	p := soc.Snapdragon888HDK()
	run := func(coverage float64) uint64 {
		l3 := MustNew(p.L3)
		slc := MustNew(p.SLC)
		h, _ := NewHierarchy(p.Clusters[soc.Big], l3, slc)
		g := NewStreamGen(AccessPattern{
			WorkingSetBytes:  64 << 20,
			SequentialFrac:   1,
			PrefetchCoverage: coverage,
		}, 1, xrand.New(9))
		total := uint64(0)
		m := g.Batch(h, 5000)
		for _, v := range m {
			total += v
		}
		return total
	}
	none, full := run(0), run(1)
	if full >= none {
		t.Fatalf("prefetch coverage did not hide misses: full=%d none=%d", full, none)
	}
	if full != 0 {
		t.Fatalf("full coverage should hide every sequential miss, got %d", full)
	}
}

func TestBatchMissesMonotoneByLevel(t *testing.T) {
	// Misses at deeper levels can never exceed misses at shallower levels.
	p := soc.Snapdragon888HDK()
	l3 := MustNew(p.L3)
	slc := MustNew(p.SLC)
	h, _ := NewHierarchy(p.Clusters[soc.Little], l3, slc)
	g := NewStreamGen(AccessPattern{WorkingSetBytes: 32 << 20, ReuseSkew: 0.5}, 3, xrand.New(2))
	m := g.Batch(h, 5000)
	for i := 1; i < len(m); i++ {
		if m[i] > m[i-1] {
			t.Fatalf("level %d misses (%d) exceed level %d misses (%d)", i+1, m[i], i, m[i-1])
		}
	}
}

func TestPollute(t *testing.T) {
	p := soc.Snapdragon888HDK()
	slc := MustNew(p.SLC)
	g := NewStreamGen(AccessPattern{WorkingSetBytes: 16 << 20}, 9, xrand.New(4))
	g.Pollute(slc, 1000)
	if slc.Stats().Accesses != 1000 {
		t.Fatalf("pollute issued %d accesses, want 1000", slc.Stats().Accesses)
	}
}

func TestSetWorkingSet(t *testing.T) {
	g := NewStreamGen(AccessPattern{WorkingSetBytes: 1 << 20}, 1, xrand.New(1))
	g.SetWorkingSet(2 << 20)
	if g.Pattern().WorkingSetBytes != 2<<20 {
		t.Fatal("SetWorkingSet did not update the pattern")
	}
	g.SetWorkingSet(1) // floors
	if g.Pattern().WorkingSetBytes < 4096 {
		t.Fatal("SetWorkingSet did not floor tiny sizes")
	}
}

func TestQuickMissRatioBounds(t *testing.T) {
	p := soc.Snapdragon888HDK()
	f := func(seed uint64, hotRaw, seqRaw uint8) bool {
		l3 := MustNew(p.L3)
		slc := MustNew(p.SLC)
		h, _ := NewHierarchy(p.Clusters[soc.Mid], l3, slc)
		g := NewStreamGen(AccessPattern{
			WorkingSetBytes: 8 << 20,
			HotFrac:         float64(hotRaw) / 255,
			SequentialFrac:  float64(seqRaw) / 255,
		}, 1, xrand.New(seed))
		m := g.Batch(h, 500)
		for _, v := range m {
			if v > 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
