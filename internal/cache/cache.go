// Package cache implements set-associative cache models and a multi-level
// hierarchy used by the CPU performance model.
//
// Simulating every one of the billions of dynamic memory accesses a
// benchmark performs would be prohibitively slow, so the simulator drives
// the caches with a *sampled* synthetic access stream: each simulation tick
// it draws a few thousand addresses from the workload's working-set
// distribution, runs them through real set-associative LRU caches, and
// scales the observed miss ratios to misses-per-kilo-instruction. This keeps
// the microarchitectural mechanisms (sets, ways, eviction, inclusion of
// multiple levels) real while staying fast.
package cache

import (
	"fmt"

	"mobilebench/internal/soc"
)

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	geom  soc.CacheGeometry
	sets  int
	shift uint // log2(line size)
	mask  uint64

	// tags[set*ways+way] holds the line tag; lru holds recency counters.
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	stats Stats
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRatio returns misses/accesses, or 0 when there were no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New constructs a cache from its geometry.
func New(geom soc.CacheGeometry) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	sets := geom.Sets()
	c := &Cache{
		geom:  geom,
		sets:  sets,
		tags:  make([]uint64, sets*geom.Ways),
		valid: make([]bool, sets*geom.Ways),
		lru:   make([]uint64, sets*geom.Ways),
	}
	for ls := geom.LineBytes; ls > 1; ls >>= 1 {
		c.shift++
	}
	c.mask = uint64(sets - 1)
	if sets&(sets-1) != 0 {
		// Non-power-of-two set counts use modulo indexing.
		c.mask = 0
	}
	return c, nil
}

// MustNew is New that panics on error; for statically correct geometries.
func MustNew(geom soc.CacheGeometry) *Cache {
	c, err := New(geom)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache geometry.
func (c *Cache) Geometry() soc.CacheGeometry { return c.geom }

// Stats returns accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears accumulated statistics but keeps cache contents, so
// per-interval miss ratios can be measured on a warm cache.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all lines and clears statistics.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.stats = Stats{}
	c.tick = 0
}

func (c *Cache) setIndex(lineAddr uint64) int {
	if c.mask != 0 {
		return int(lineAddr & c.mask)
	}
	return int(lineAddr % uint64(c.sets))
}

// Access looks up addr, filling the line on a miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.shift
	set := c.setIndex(line)
	base := set * c.geom.Ways
	c.tick++
	c.stats.Accesses++

	victim, victimLRU := base, c.lru[base]
	for w := 0; w < c.geom.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = c.tick
			return true
		}
		if !c.valid[i] {
			victim, victimLRU = i, 0
		} else if c.lru[i] < victimLRU {
			victim, victimLRU = i, c.lru[i]
		}
	}
	c.stats.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.tick
	return false
}

// Contains reports whether addr is resident without touching LRU state or
// statistics; used by tests and by inclusive-hierarchy checks.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.shift
	base := c.setIndex(line) * c.geom.Ways
	for w := 0; w < c.geom.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// LevelResult summarizes one level's behaviour for an access batch.
type LevelResult struct {
	Name     string
	Accesses uint64
	Misses   uint64
}

// Hierarchy is a CPU-side cache hierarchy: private L1D and L2, shared L3 and
// system-level cache (SLC). Instruction-side behaviour is modelled
// separately by the performance model because instruction working sets of
// the studied workloads are small relative to L1I.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	L3  *Cache // shared; may be aliased between hierarchies
	SLC *Cache // shared SoC-wide cache

	// DRAMAccesses counts accesses that missed every level.
	DRAMAccesses uint64
}

// NewHierarchy builds a hierarchy with private L1/L2 from the cluster
// geometry and the given shared L3/SLC instances.
func NewHierarchy(cl soc.CPUCluster, l3, slc *Cache) (*Hierarchy, error) {
	l1, err := New(cl.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cl.L2)
	if err != nil {
		return nil, err
	}
	if l3 == nil || slc == nil {
		return nil, fmt.Errorf("cache: shared levels must be non-nil")
	}
	return &Hierarchy{L1D: l1, L2: l2, L3: l3, SLC: slc}, nil
}

// Access sends addr down the hierarchy and returns the deepest level that
// had to be consulted: 1 = L1 hit, 2 = L2 hit, 3 = L3 hit, 4 = SLC hit,
// 5 = DRAM.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1D.Access(addr) {
		return 1
	}
	if h.L2.Access(addr) {
		return 2
	}
	if h.L3.Access(addr) {
		return 3
	}
	if h.SLC.Access(addr) {
		return 4
	}
	h.DRAMAccesses++
	return 5
}

// Flush clears every private level and the DRAM counter (shared levels are
// left to their owner).
func (h *Hierarchy) Flush() {
	h.L1D.Flush()
	h.L2.Flush()
	h.DRAMAccesses = 0
}

// ResetStats clears statistics on the private levels.
func (h *Hierarchy) ResetStats() {
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.DRAMAccesses = 0
}

// Levels returns per-level stats for the private levels plus the shared
// levels (the shared entries aggregate all users of those caches).
func (h *Hierarchy) Levels() []LevelResult {
	out := []LevelResult{
		{Name: h.L1D.geom.Name, Accesses: h.L1D.stats.Accesses, Misses: h.L1D.stats.Misses},
		{Name: h.L2.geom.Name, Accesses: h.L2.stats.Accesses, Misses: h.L2.stats.Misses},
		{Name: h.L3.geom.Name, Accesses: h.L3.stats.Accesses, Misses: h.L3.stats.Misses},
		{Name: h.SLC.geom.Name, Accesses: h.SLC.stats.Accesses, Misses: h.SLC.stats.Misses},
	}
	return out
}
