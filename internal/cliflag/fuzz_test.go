package cliflag_test

import (
	"flag"
	"io"
	"strings"
	"testing"

	"mobilebench/internal/cliflag"
)

// FuzzResilienceFlags drives the shared CLI flag surface with arbitrary
// argv vectors: registration, parsing and the derived Policy/Injector/
// Validate calls must never panic, whatever a user types after mbchar or
// mbreport. Error returns are fine — crashes are not.
func FuzzResilienceFlags(f *testing.F) {
	f.Add("-max-retries 3 -inject crash=0.2,seed=7")
	f.Add("-checkpoint snap.mbcp -resume")
	f.Add("-run-timeout 30s -min-runs 2 -fail-fast")
	f.Add("-resume")                 // invalid: -resume without -checkpoint
	f.Add("-inject bogus=1")         // invalid spec, caught by Injector()
	f.Add("-max-retries= -min-runs") // malformed values
	f.Add("-run-timeout 1h30m -inject crash=0.1,nan=0.1")
	f.Fuzz(func(t *testing.T, argv string) {
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		res := cliflag.RegisterResilienceOn(fs)
		cp := cliflag.RegisterCheckpointOn(fs)
		if err := fs.Parse(strings.Fields(argv)); err != nil {
			return
		}
		_ = cp.Validate()
		_ = res.Policy()
		if inj, err := res.Injector(); err == nil && inj != nil {
			_ = inj.PlanFor("unit", 0, 0)
		}
	})
}
