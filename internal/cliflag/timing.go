// The shared external-timing-model flags: -timing-model names a child
// command serving the cosim protocol, -timing-replay a directory for its
// deterministic replay log. Wired identically into mbsim, mbchar and the
// mbserved worker, so `-timing-model "mbtiming -model qdram"` means the
// same collection everywhere.
package cliflag

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mobilebench/internal/cosim"
	"mobilebench/internal/soc"
)

// Timing holds the values of the shared external-timing flags.
type Timing struct {
	// ModelCmd is the -timing-model child command line ("" = in-process).
	ModelCmd string
	// ReplayDir is the -timing-replay log directory ("" disables replay).
	ReplayDir string
}

// RegisterTiming registers the external-timing flags on the default flag
// set and returns the value holder; read it after flag.Parse.
func RegisterTiming() *Timing {
	return RegisterTimingOn(flag.CommandLine)
}

// RegisterTimingOn is RegisterTiming on an explicit flag set.
func RegisterTimingOn(fs *flag.FlagSet) *Timing {
	t := &Timing{}
	fs.StringVar(&t.ModelCmd, "timing-model", "",
		`external timing-model command serving the cosim protocol, e.g. "mbtiming -model qdram" ("" = in-process models)`)
	fs.StringVar(&t.ReplayDir, "timing-replay", "",
		"directory for the external model's deterministic replay log; resumed runs replay logged replies instead of re-asking")
	return t
}

// Validate rejects flag combinations before any child is spawned.
func (t *Timing) Validate() error {
	if t.ReplayDir != "" && t.ModelCmd == "" {
		return fmt.Errorf("-timing-replay requires -timing-model to name the external model")
	}
	return nil
}

// Provider builds the cosim provider for the platform (nil = the default
// Snapdragon 888 HDK, matching sim.DefaultConfig): spawning the child,
// completing the handshake and opening the replay log. It returns (nil,
// nil) when -timing-model is unset — callers must then leave
// sim.Config.Timing nil rather than storing a typed nil interface. Close
// the provider after the collection.
func (t *Timing) Provider(plat *soc.Platform) (*cosim.Provider, error) {
	return t.provider(plat, true)
}

// Fingerprint probes the configured model for its timing identity — the
// sim.TimingProvider.Fingerprint() value collections under it carry — by
// spawning the child, completing the handshake and closing it again. It
// returns "" when -timing-model is unset, and for an exact model (which
// shares the in-process identity). Coordinator-mode mbserved uses it to
// fold the fleet's timing identity into cache keys without keeping a
// long-lived child of its own: a coordinator never executes specs.
func (t *Timing) Fingerprint(plat *soc.Platform) (string, error) {
	p, err := t.provider(plat, false)
	if err != nil || p == nil {
		return "", err
	}
	defer p.Close()
	return p.Fingerprint(), nil
}

func (t *Timing) provider(plat *soc.Platform, withReplay bool) (*cosim.Provider, error) {
	if t.ModelCmd == "" {
		return nil, nil
	}
	if plat == nil {
		plat = soc.Snapdragon888HDK()
	}
	cfg := cosim.Config{
		Command: strings.Fields(t.ModelCmd),
		MemHW:   plat.Memory,
		StorHW:  plat.Storage,
		Stderr:  os.Stderr,
	}
	if withReplay && t.ReplayDir != "" {
		if err := os.MkdirAll(t.ReplayDir, 0o755); err != nil {
			return nil, err
		}
		cfg.ReplayPath = filepath.Join(t.ReplayDir, "cosim-replay.log")
	}
	return cosim.NewProvider(cfg)
}
