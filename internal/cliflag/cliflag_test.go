package cliflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"testing"
	"time"

	"mobilebench/internal/core"
	"mobilebench/internal/cosim"
	"mobilebench/internal/fault"
)

// TestMain doubles as the external timing-model child (the cosim re-exec
// pattern): with MBCOSIM_CHILD=1 the test binary serves the cosim protocol
// on its stdin/stdout, so Timing.Provider/Fingerprint can spawn a real
// child without building cmd/mbtiming.
func TestMain(m *testing.M) {
	if os.Getenv("MBCOSIM_CHILD") == "1" {
		if err := cosim.Serve(os.Stdin, os.Stdout, cosim.ServeOptions{Model: os.Getenv("MBCOSIM_MODEL")}); err != nil {
			fmt.Fprintln(os.Stderr, "cosim child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// TestTimingFingerprintProbe: Fingerprint spawns the model once, reads its
// identity and closes it — "" with no model configured, "" for an exact
// child (shares the in-process identity), "cosim:<model>" otherwise. The
// coordinator folds this value into its cache keys, so it must match what
// worker collections fingerprint.
func TestTimingFingerprintProbe(t *testing.T) {
	var tm Timing
	fp, err := tm.Fingerprint(nil)
	if err != nil || fp != "" {
		t.Fatalf("unconfigured Fingerprint = (%q, %v), want (\"\", nil)", fp, err)
	}

	// The spawned child is this test binary re-exec'd; it inherits the
	// parent environment, which t.Setenv steers.
	t.Setenv("MBCOSIM_CHILD", "1")
	t.Setenv("MBCOSIM_MODEL", cosim.ModelQDRAM)
	tm = Timing{ModelCmd: os.Args[0]}
	fp, err = tm.Fingerprint(nil)
	if err != nil {
		t.Fatalf("Fingerprint(qdram): %v", err)
	}
	if want := "cosim:" + cosim.ModelQDRAM; fp != want {
		t.Fatalf("qdram Fingerprint = %q, want %q", fp, want)
	}

	t.Setenv("MBCOSIM_MODEL", cosim.ModelAnalytic)
	fp, err = tm.Fingerprint(nil)
	if err != nil {
		t.Fatalf("Fingerprint(analytic): %v", err)
	}
	if fp != "" {
		t.Fatalf("exact analytic child Fingerprint = %q, want \"\" (shares the in-process identity)", fp)
	}
}

func TestResilienceFlagParsing(t *testing.T) {
	fs := newFlagSet()
	r := RegisterResilienceOn(fs)
	err := fs.Parse([]string{
		"-max-retries", "3",
		"-run-timeout", "45s",
		"-min-runs", "2",
		"-fail-fast",
		"-inject", "crash=0.2,nan=0.1,seed=7",
	})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := core.Resilience{MaxRetries: 3, RunTimeout: 45 * time.Second, MinRuns: 2, FailFast: true}
	if got := r.Policy(); got != want {
		t.Fatalf("Policy = %+v, want %+v", got, want)
	}
	if r.InjectSpec != "crash=0.2,nan=0.1,seed=7" {
		t.Fatalf("InjectSpec = %q", r.InjectSpec)
	}
}

func TestResilienceDefaultsAreZero(t *testing.T) {
	fs := newFlagSet()
	r := RegisterResilienceOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Policy(); got != (core.Resilience{}) {
		t.Fatalf("default policy = %+v, want the strict zero policy", got)
	}
	inj, err := r.Injector()
	if err != nil || inj != nil {
		t.Fatalf("default Injector = (%v, %v), want (nil, nil)", inj, err)
	}
}

// TestInjectSpecRoundTrip asserts the -inject flag and fault.Parse agree:
// the spec a user passes produces exactly the injector config the fault
// package documents for it.
func TestInjectSpecRoundTrip(t *testing.T) {
	fs := newFlagSet()
	r := RegisterResilienceOn(fs)
	spec := "crash=0.25,abort=0.1,hang=0.05,hang_sec=2,drop=0.1,nan=0.2,skew=0.15,seed=99,clean_after=4"
	if err := fs.Parse([]string{"-inject", spec}); err != nil {
		t.Fatal(err)
	}
	inj, err := r.Injector()
	if err != nil {
		t.Fatalf("Injector: %v", err)
	}
	if inj == nil {
		t.Fatal("Injector returned nil for a non-empty spec")
	}
	want, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inj.Config(), want.Config()) {
		t.Fatalf("flag-parsed injector config %+v differs from fault.Parse %+v", inj.Config(), want.Config())
	}
	if got := inj.Config(); got.Crash != 0.25 || got.Seed != 99 || got.CleanAfter != 4 || got.HangSec != 2 {
		t.Fatalf("spec fields not honoured: %+v", got)
	}
}

func TestInjectSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"crash=2", "bogus=0.5", "crash", "hang_sec=-1"} {
		fs := newFlagSet()
		r := RegisterResilienceOn(fs)
		if err := fs.Parse([]string{"-inject", spec}); err != nil {
			t.Fatalf("flag parse of %q should succeed (validation is Injector's job): %v", spec, err)
		}
		if _, err := r.Injector(); err == nil {
			t.Fatalf("Injector accepted invalid spec %q", spec)
		}
	}
}

func TestCheckpointFlagParsing(t *testing.T) {
	fs := newFlagSet()
	c := RegisterCheckpointOn(fs)
	if err := fs.Parse([]string{"-checkpoint", "run.ckpt", "-resume"}); err != nil {
		t.Fatal(err)
	}
	if c.Path != "run.ckpt" || !c.Resume {
		t.Fatalf("Checkpoint = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCheckpointValidateRejectsBareResume(t *testing.T) {
	fs := newFlagSet()
	c := RegisterCheckpointOn(fs)
	if err := fs.Parse([]string{"-resume"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("-resume without -checkpoint should be rejected")
	}
	// And the defaults validate clean.
	fs2 := newFlagSet()
	c2 := RegisterCheckpointOn(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Validate(); err != nil {
		t.Fatalf("zero-value flags should validate: %v", err)
	}
}

// TestRegisterOnDefaultSetWiring pins that the convenience registrars hit
// flag.CommandLine with the canonical names (a fresh CommandLine keeps the
// test hermetic).
func TestRegisterOnDefaultSetWiring(t *testing.T) {
	old := flag.CommandLine
	defer func() { flag.CommandLine = old }()
	flag.CommandLine = flag.NewFlagSet("prog", flag.ContinueOnError)

	RegisterResilience()
	RegisterCheckpoint()
	for _, name := range []string{"max-retries", "run-timeout", "min-runs", "fail-fast", "inject", "checkpoint", "resume"} {
		if flag.CommandLine.Lookup(name) == nil {
			t.Errorf("flag -%s not registered on the default set", name)
		}
	}
}
