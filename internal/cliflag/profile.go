package cliflag

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile holds the values of the shared pprof flags: -cpuprofile and
// -memprofile on the batch CLIs (mbchar, mbcluster). Profiles are written
// with plain os.Create — not the atomic-write path — because a profile is a
// diagnostic artifact, not a dataset: a torn profile from a crashed run is
// useless either way, and pprof owns the file handle for the whole run.
// mblint's atomicwrite pass is excluded for this package in .mblint.json
// for exactly that reason.
type Profile struct {
	// CPUPath is the -cpuprofile output file ("" disables CPU profiling).
	CPUPath string
	// MemPath is the -memprofile output file ("" disables the heap dump).
	MemPath string

	cpuFile *os.File
}

// RegisterProfile registers the profiling flags on the default flag set and
// returns the value holder; read it after flag.Parse.
func RegisterProfile() *Profile {
	return RegisterProfileOn(flag.CommandLine)
}

// RegisterProfileOn is RegisterProfile on an explicit flag set.
func RegisterProfileOn(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPUPath, "cpuprofile", "",
		"write a pprof CPU profile of the whole invocation to this file")
	fs.StringVar(&p.MemPath, "memprofile", "",
		"write a pprof heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Callers must pair
// it with Stop (normally via defer) before exiting.
func (p *Profile) Start() error {
	if p.CPUPath == "" {
		return nil
	}
	f, err := os.Create(p.CPUPath)
	if err != nil {
		return fmt.Errorf("cliflag: -cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cliflag: -cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, in that order.
// It is safe to call when neither flag was given.
func (p *Profile) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("cliflag: -cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.MemPath == "" {
		return nil
	}
	f, err := os.Create(p.MemPath)
	if err != nil {
		return fmt.Errorf("cliflag: -memprofile: %w", err)
	}
	defer f.Close()
	// Materialize a settled heap picture: allocs-in-flight from the just
	// finished pipeline would otherwise dominate the live-object profile.
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("cliflag: -memprofile: %w", err)
	}
	return nil
}
