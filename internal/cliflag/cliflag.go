// Package cliflag holds the fault-tolerance and durability flags shared by
// every CLI: -max-retries, -run-timeout, -min-runs, -fail-fast and -inject,
// plus -checkpoint and -resume, wired identically so
// `mbchar -inject crash=0.2 -max-retries 3` and
// `mbreport -inject crash=0.2 -max-retries 3` mean the same thing.
package cliflag

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobilebench/internal/core"
	"mobilebench/internal/fault"
)

// Resilience holds the values of the shared fault-tolerance flags.
type Resilience struct {
	MaxRetries int
	RunTimeout time.Duration
	MinRuns    int
	FailFast   bool
	InjectSpec string
}

// RegisterResilience registers the shared flags on the default flag set and
// returns the value holder; read it after flag.Parse.
func RegisterResilience() *Resilience {
	return RegisterResilienceOn(flag.CommandLine)
}

// RegisterResilienceOn is RegisterResilience on an explicit flag set, the
// testable seam every CLI funnels through.
func RegisterResilienceOn(fs *flag.FlagSet) *Resilience {
	r := &Resilience{}
	fs.IntVar(&r.MaxRetries, "max-retries", 0,
		"extra attempts per (benchmark, run) after a failed one (0 = fail on the first error)")
	fs.DurationVar(&r.RunTimeout, "run-timeout", 0,
		"per-attempt wall-clock timeout, e.g. 30s (0 = no timeout)")
	fs.IntVar(&r.MinRuns, "min-runs", 0,
		"accept a benchmark once this many of its runs are valid (0 = every run required)")
	fs.BoolVar(&r.FailFast, "fail-fast", false,
		"abort on the first permanently failed run instead of finishing siblings")
	fs.StringVar(&r.InjectSpec, "inject", "",
		"deterministic fault-injection spec for chaos testing, e.g. crash=0.2,nan=0.1,seed=7")
	return r
}

// Checkpoint holds the values of the shared durability flags.
type Checkpoint struct {
	// Path is the -checkpoint snapshot file ("" disables checkpointing).
	Path string
	// Resume is the -resume flag: restore completed (benchmark, run)
	// pairs from Path before collecting.
	Resume bool
}

// RegisterCheckpoint registers the durability flags on the default flag set
// and returns the value holder; read it after flag.Parse.
func RegisterCheckpoint() *Checkpoint {
	return RegisterCheckpointOn(flag.CommandLine)
}

// RegisterCheckpointOn is RegisterCheckpoint on an explicit flag set.
func RegisterCheckpointOn(fs *flag.FlagSet) *Checkpoint {
	c := &Checkpoint{}
	fs.StringVar(&c.Path, "checkpoint", "",
		"snapshot file persisting every completed (benchmark, run) atomically, so a killed collection can resume")
	fs.BoolVar(&c.Resume, "resume", false,
		"restore completed (benchmark, run) pairs from the -checkpoint snapshot before collecting the rest")
	return c
}

// Validate rejects flag combinations core would refuse anyway, but with a
// CLI-shaped message before any simulation starts.
func (c *Checkpoint) Validate() error {
	if c.Resume && c.Path == "" {
		return fmt.Errorf("-resume requires -checkpoint to name the snapshot file")
	}
	return nil
}

// Policy returns the retry/timeout policy the flags selected.
func (r *Resilience) Policy() core.Resilience {
	return core.Resilience{
		MaxRetries: r.MaxRetries,
		RunTimeout: r.RunTimeout,
		FailFast:   r.FailFast,
		MinRuns:    r.MinRuns,
	}
}

// Injector parses the -inject spec (nil when the flag is unset).
func (r *Resilience) Injector() (*fault.Injector, error) {
	return fault.Parse(r.InjectSpec)
}

// WarnDegraded prints the collection provenance to stderr when the dataset
// fell short of a full set of clean runs, so degraded numbers never pass
// silently.
func WarnDegraded(prog string, ds *core.Dataset) {
	if ds == nil || !ds.Degraded() {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: warning: collection degraded by faults:\n", prog)
	for _, p := range ds.Provenance {
		if p.Degraded() {
			fmt.Fprintf(os.Stderr, "%s:   %s\n", prog, p)
		}
	}
}
