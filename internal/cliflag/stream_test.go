package cliflag

import (
	"flag"
	"io"
	"testing"
)

func parseStream(t *testing.T, args ...string) *Stream {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := RegisterStreamOn(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamFlagDefaults(t *testing.T) {
	s := parseStream(t)
	if s.Enable || s.KMin != 2 || s.KMax != 9 || s.Churn != 0 || s.Exact {
		t.Fatalf("defaults = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestStreamFlagValidate(t *testing.T) {
	good := parseStream(t, "-stream", "-stream-kmin", "2", "-stream-kmax", "6", "-stream-churn", "0.2", "-stream-exact")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	for _, args := range [][]string{
		{"-stream-kmax", "4"},               // tuning without -stream
		{"-stream-exact"},                   // tuning without -stream
		{"-stream", "-stream-kmin", "1"},    // kMin below 2
		{"-stream", "-stream-kmax", "1"},    // kMax below kMin
		{"-stream", "-stream-churn", "1.5"}, // churn outside [0, 1]
		{"-stream", "-stream-churn", "-1"},
	} {
		if err := parseStream(t, args...).Validate(); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
