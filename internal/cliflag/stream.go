// The shared streaming-ingest flags: -stream enables mbserved's
// /v1/stream API, with the sweep range, churn threshold and exact-mode
// knobs riding alongside.
package cliflag

import (
	"flag"
	"fmt"
)

// Stream holds the values of the streaming-ingest flags.
type Stream struct {
	// Enable turns the streaming ingest API on.
	Enable bool
	// KMin..KMax is the swept cluster-count range.
	KMin, KMax int
	// Churn is the warm-start acceptance threshold in [0, 1].
	Churn float64
	// Exact disables warm starts (every refresh re-clusters cold, reusing
	// only the delta distance matrices).
	Exact bool
}

// RegisterStream registers the streaming-ingest flags on the default flag
// set and returns the value holder; read it after flag.Parse.
func RegisterStream() *Stream {
	return RegisterStreamOn(flag.CommandLine)
}

// RegisterStreamOn is RegisterStream on an explicit flag set.
func RegisterStreamOn(fs *flag.FlagSet) *Stream {
	s := &Stream{}
	fs.BoolVar(&s.Enable, "stream", false,
		"enable the streaming ingest API (/v1/stream): records fold into an incrementally re-clustered analysis")
	fs.IntVar(&s.KMin, "stream-kmin", 2, "smallest cluster count the streaming sweep validates")
	fs.IntVar(&s.KMax, "stream-kmax", 9, "largest cluster count the streaming sweep validates")
	fs.Float64Var(&s.Churn, "stream-churn", 0,
		"warm-start churn threshold: the fraction of observations a warm re-clustering may move before the cell re-clusters cold (0 = none)")
	fs.BoolVar(&s.Exact, "stream-exact", false,
		"disable warm starts: every refresh re-clusters cold, keeping only the delta distance matrices (bit-identical to the batch sweep on any data)")
	return s
}

// Validate rejects flag combinations before the server starts.
func (s *Stream) Validate() error {
	if !s.Enable {
		if s.KMin != 2 || s.KMax != 9 || s.Churn != 0 || s.Exact {
			return fmt.Errorf("-stream-kmin/-stream-kmax/-stream-churn/-stream-exact require -stream")
		}
		return nil
	}
	if s.KMin < 2 {
		return fmt.Errorf("-stream-kmin %d < 2", s.KMin)
	}
	if s.KMax < s.KMin {
		return fmt.Errorf("-stream-kmax %d < -stream-kmin %d", s.KMax, s.KMin)
	}
	if s.Churn < 0 || s.Churn > 1 {
		return fmt.Errorf("-stream-churn %v outside [0, 1]", s.Churn)
	}
	return nil
}
