// Command mbsubset computes the paper's reduced benchmark sets: Table VI
// (runtimes and reductions) and, with -curve, the Figure 7 growth curves.
// With -budget SECONDS it instead greedily selects the most representative
// subset under a runtime budget.
//
// Usage:
//
//	mbsubset [-runs N] [-workers N] [-curve] [-budget SECONDS]
//	         [-max-retries N] [-run-timeout D] [-min-runs N] [-fail-fast]
//	         [-inject SPEC] [-checkpoint FILE] [-resume]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/report"
	"mobilebench/internal/sim"
	"mobilebench/internal/subset"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation/curve worker goroutines (0 = all cores)")
	curve := flag.Bool("curve", false, "print the Figure 7 growth curves")
	budget := flag.Float64("budget", 0, "select a subset under this runtime budget (seconds)")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	inj, err := rf.Injector()
	if err != nil {
		fatal(err)
	}
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj},
		Runs:       *runs,
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	cliflag.WarnDegraded("mbsubset", ds)

	if *budget > 0 {
		set, err := subset.UnderBudget(ds.SubsetBenchmarks(), *budget)
		if err != nil {
			fatal(err)
		}
		rt, err := subset.RuntimeSec(ds.SubsetBenchmarks(), set.Members)
		if err != nil {
			fatal(err)
		}
		d, err := subset.TotalMinDistance(ds.SubsetBenchmarks(), set.Members)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %v\nruntime %.1f s, representativeness distance %.2f\n",
			set.Name, set.Members, rt, d)
		return
	}

	if *curve {
		curves, err := ds.Figure7()
		if err != nil {
			fatal(err)
		}
		if err := report.Figure7(curves).Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	reds, err := ds.TableVI()
	if err != nil {
		fatal(err)
	}
	if err := report.TableVI(ds, reds).Write(os.Stdout); err != nil {
		fatal(err)
	}
	gpuName, gpuLoad := ds.HighestAvgGPULoad()
	aieName, aieLoad := ds.HighestAvgAIELoad()
	fmt.Printf("\nhighest average GPU load: %s (%.2f)\nhighest average AIE load: %s (%.2f)\n",
		gpuName, gpuLoad, aieName, aieLoad)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsubset:", err)
	os.Exit(1)
}
