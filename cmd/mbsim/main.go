// Command mbsim runs a single benchmark on the simulated platform and
// either prints its aggregate counters or dumps the full counter trace as
// CSV (for plotting).
//
// Usage:
//
//	mbsim -bench "3DMark Wild Life" [-runs N] [-workers N] [-csv] [-list]
//	      [-max-retries N] [-run-timeout D] [-min-runs N] [-fail-fast]
//	      [-inject SPEC] [-checkpoint FILE] [-resume] [-fast-forward]
//	      [-timing-model CMD] [-timing-replay DIR]
//	      [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/par"
	"mobilebench/internal/roi"
	"mobilebench/internal/sim"
	"mobilebench/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (analysis unit or executable)")
	runs := flag.Int("runs", 1, "runs to average")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	verbose := flag.Bool("verbose", false, "print execution details")
	csv := flag.Bool("csv", false, "dump the full counter trace as CSV")
	list := flag.Bool("list", false, "list available benchmarks")
	roiWindow := flag.Float64("roi", 0, "select representative regions of interest with this window length (seconds)")
	fastForward := flag.Bool("fast-forward", false,
		"skip steady-state phase ticks analytically (about 4x faster; counters drift within the differential-suite tolerances)")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	pf := cliflag.RegisterProfile()
	tf := cliflag.RegisterTiming()
	flag.Parse()

	if *list {
		fmt.Println("Analysis units:")
		for _, w := range workload.AnalysisUnits() {
			fmt.Printf("  %-30s %-12s %6.1f s\n", w.Name, w.Suite, w.Duration())
		}
		fmt.Println("\nIndividually executable sub-benchmarks:")
		var names []string
		for _, w := range workload.Executables() {
			names = append(names, fmt.Sprintf("  %-55s %-12s %6.1f s", w.Name, w.Suite, w.Duration()))
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if *bench == "" {
		fatal(fmt.Errorf("missing -bench (use -list to see names)"))
	}
	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	if err := tf.Validate(); err != nil {
		fatal(err)
	}
	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	inj, err := rf.Injector()
	if err != nil {
		fatal(err)
	}
	timing, err := tf.Provider(nil)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "mbsim: %d runs across %d workers\n", *runs, par.Workers(*workers))
	}
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "mbsim: %v\n", err)
		}
	}()
	// A single-unit Collect rather than a bare engine loop: the same
	// fan-out drives every CLI, so -checkpoint/-resume behave identically
	// here and in the full characterizations.
	simCfg := sim.Config{Fault: inj, FastForward: *fastForward}
	if timing != nil {
		simCfg.Timing = timing
		defer timing.Close()
	}
	ds, err := core.Collect(core.Options{
		Sim:        simCfg,
		Runs:       *runs,
		Units:      []workload.Workload{w},
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	u := ds.Units[0]
	if prov, ok := ds.ProvenanceOf(w.Name); ok && (prov.Degraded() || prov.TotalRetries() > 0) {
		fmt.Fprintf(os.Stderr, "mbsim: %s\n", prov)
	}
	if *csv {
		if err := u.Trace.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *roiWindow > 0 {
		sel, err := roi.Analyze(u.Trace, roi.Options{WindowSec: *roiWindow})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d representative intervals over %d windows (%.0f%% coverage)\n",
			w.Name, len(sel.Intervals), sel.Windows, sel.Coverage*100)
		for _, iv := range sel.Intervals {
			fmt.Printf("  phase %d  %7.1f - %7.1f s  weight %.2f\n",
				iv.Phase, iv.StartSec, iv.EndSec, iv.Weight)
		}
		fmt.Printf("replay budget %.1f s of %.1f s; reconstruction error %.1f%%\n",
			sel.SimulatedSeconds(), u.Agg.RuntimeSec, sel.ReconstructionError()*100)
		return
	}
	a := u.Agg
	fmt.Printf("%s (%s)\n", w.Name, w.Suite)
	fmt.Printf("  runtime           %.1f s\n", a.RuntimeSec)
	fmt.Printf("  instructions      %.2f B\n", a.InstrCount/1e9)
	fmt.Printf("  IPC               %.2f\n", a.IPC)
	fmt.Printf("  cache MPKI        %.1f\n", a.CacheMPKI)
	fmt.Printf("  branch MPKI       %.1f\n", a.BranchMPKI)
	fmt.Printf("  CPU load          %.2f (little %.2f / mid %.2f / big %.2f)\n",
		a.AvgCPULoad, a.ClusterLoad[0], a.ClusterLoad[1], a.ClusterLoad[2])
	fmt.Printf("  GPU load          %.2f (shaders %.2f, bus %.2f)\n",
		a.AvgGPULoad, a.AvgShadersBusy, a.AvgGPUBusBusy)
	fmt.Printf("  AIE load          %.2f\n", a.AvgAIELoad)
	fmt.Printf("  memory used       %.1f%% (avg %.2f GB, peak %.2f GB)\n",
		a.AvgUsedMemFrac*100, a.AvgUsedMemMB/1024, a.PeakUsedMemMB/1024)
	fmt.Printf("  power             %.2f W average, %.1f J total (extension)\n",
		a.AvgPowerW, a.EnergyJ)
	fmt.Printf("  peak CPU temp     %.1f C (extension)\n", a.PeakCPUTempC)
	fmt.Printf("  trace             %d metrics x %d samples\n",
		u.Trace.NumMetrics(), u.Trace.Samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsim:", err)
	os.Exit(1)
}
