// Command mbchar characterizes the commercial mobile benchmark suites on
// the simulated platform and prints the Figure 1 metrics, the Table III
// correlations and (optionally) the Section V observation checks.
//
// Usage:
//
//	mbchar [-runs N] [-workers N] [-csv] [-correlation] [-observations]
//	       [-max-retries N] [-run-timeout D] [-min-runs N] [-fail-fast]
//	       [-inject SPEC] [-checkpoint FILE] [-resume]
//	       [-timing-model CMD] [-timing-replay DIR]
//	       [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/par"
	"mobilebench/internal/report"
	"mobilebench/internal/sim"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = default)")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	verbose := flag.Bool("verbose", false, "print execution details")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	correlation := flag.Bool("correlation", false, "print only Table III")
	observations := flag.Bool("observations", false, "print only the observation checks")
	fastForward := flag.Bool("fast-forward", false,
		"skip steady-state phase ticks analytically (about 4x faster; counters drift within the differential-suite tolerances)")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	pf := cliflag.RegisterProfile()
	tf := cliflag.RegisterTiming()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	if err := tf.Validate(); err != nil {
		fatal(err)
	}
	inj, err := rf.Injector()
	if err != nil {
		fatal(err)
	}
	timing, err := tf.Provider(nil)
	if err != nil {
		fatal(err)
	}
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fatal(err)
		}
	}()
	if *verbose {
		fmt.Fprintf(os.Stderr, "mbchar: characterizing with %d workers\n", par.Workers(*workers))
	}
	simCfg := sim.Config{Seed: *seed, Fault: inj, FastForward: *fastForward}
	if timing != nil {
		simCfg.Timing = timing
		defer timing.Close()
	}
	ds, err := core.Collect(core.Options{
		Sim:        simCfg,
		Runs:       *runs,
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	cliflag.WarnDegraded("mbchar", ds)

	emit := func(t *report.Table) {
		var werr error
		if *csv {
			werr = t.WriteCSV(os.Stdout)
		} else {
			werr = t.Write(os.Stdout)
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Println()
	}

	switch {
	case *correlation:
		emit(report.TableIII(ds))
	case *observations:
		obs, err := ds.Observations()
		if err != nil {
			fatal(err)
		}
		emit(report.Observations(obs))
	default:
		emit(report.Figure1(ds))
		emit(report.TableIII(ds))
		obs, err := ds.Observations()
		if err != nil {
			fatal(err)
		}
		emit(report.Observations(obs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbchar:", err)
	os.Exit(1)
}
