// mbtiming is the reference external timing model: it serves the cosim
// protocol on stdin/stdout so any mobilebench tool can run it via
// -timing-model. The analytic model answers with the exact in-process
// memory/storage math (byte-identical datasets); qdram adds a storage
// service queue that carries backlog across ticks. -chaos turns it into a
// deliberately misbehaving child for supervision testing.
//
// Usage:
//
//	mbsim -timing-model "mbtiming"              # analytic, bit-identical
//	mbsim -timing-model "mbtiming -model qdram" # queued-DRAM storage
//	mbtiming -chaos kill_batch=3                # die before the 3rd batch
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench/internal/cosim"
	"mobilebench/internal/fault"
)

func main() {
	model := flag.String("model", cosim.ModelAnalytic, "timing model to serve: analytic or qdram")
	chaos := flag.String("chaos", "", "cosim chaos spec, e.g. kill_batch=3 or hang_batch=2,hang_sec=10 (testing)")
	flag.Parse()

	cfg, err := fault.ParseCosim(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtiming:", err)
		os.Exit(2)
	}
	if err := cosim.Serve(os.Stdin, os.Stdout, cosim.ServeOptions{Model: *model, Chaos: cfg}); err != nil {
		fmt.Fprintln(os.Stderr, "mbtiming:", err)
		os.Exit(1)
	}
}
