// Command mbcluster runs the similarity analysis: the Figure 4 cluster-count
// validation sweep and the Figure 5/6 clusterings (hierarchical dendrogram
// plus K-means/PAM groupings).
//
// Usage:
//
//	mbcluster [-runs N] [-workers N] [-k K] [-validate] [-kmeans|-pam]
//	          [-max-retries N] [-run-timeout D] [-min-runs N] [-fail-fast]
//	          [-inject SPEC] [-checkpoint FILE] [-resume]
//	          [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/cluster"
	"mobilebench/internal/core"
	"mobilebench/internal/par"
	"mobilebench/internal/report"
	"mobilebench/internal/sim"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	k := flag.Int("k", 5, "number of clusters")
	workers := flag.Int("workers", 0, "simulation/sweep worker goroutines (0 = all cores)")
	verbose := flag.Bool("verbose", false, "print execution details")
	validate := flag.Bool("validate", false, "print the Figure 4 validation sweep")
	kmeans := flag.Bool("kmeans", false, "print only the K-means clustering (Figure 6)")
	pam := flag.Bool("pam", false, "print only the PAM clustering")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	pf := cliflag.RegisterProfile()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	inj, err := rf.Injector()
	if err != nil {
		fatal(err)
	}
	if err := pf.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fatal(err)
		}
	}()
	if *verbose {
		fmt.Fprintf(os.Stderr, "mbcluster: characterizing with %d workers\n", par.Workers(*workers))
	}
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj},
		Runs:       *runs,
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	cliflag.WarnDegraded("mbcluster", ds)

	if *validate {
		scores, err := ds.Figure4(2, 9)
		if err != nil {
			fatal(err)
		}
		if err := report.Figure4(scores).Write(os.Stdout); err != nil {
			fatal(err)
		}
		best := cluster.BestK(scores)
		fmt.Printf("\noptimal number of clusters: %d\n", best)
		return
	}

	switch {
	case *kmeans:
		c, err := ds.ClusterWith(cluster.NewKMeans(), *k)
		if err != nil {
			fatal(err)
		}
		mustWrite(report.Clusters(c))
	case *pam:
		c, err := ds.ClusterWith(cluster.NewPAM(), *k)
		if err != nil {
			fatal(err)
		}
		mustWrite(report.Clusters(c))
	default:
		fig5, den, err := ds.Figure5()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Dendrogram(den, ds.Names()))
		fmt.Println()
		mustWrite(report.Clusters(fig5))
		fmt.Println()
		agree, cs, err := ds.AgreementAcrossAlgorithms(*k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("all algorithms agree at k=%d: %v\n\n", *k, agree)
		for _, c := range cs[1:] {
			mustWrite(report.Clusters(c))
			fmt.Println()
		}
	}
}

func mustWrite(t *report.Table) {
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbcluster:", err)
	os.Exit(1)
}
