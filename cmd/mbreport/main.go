// Command mbreport runs the full characterization and writes the complete
// report — Figure 1 metrics, Table III correlations, Table V load levels,
// Table VI subsets and the Section V observation checks — to stdout or a
// file. It is the one-command version of the paper's evaluation section.
//
// Usage:
//
//	mbreport [-runs N] [-workers N] [-o FILE] [-max-retries N]
//	         [-run-timeout D] [-min-runs N] [-fail-fast] [-inject SPEC]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench"
	"mobilebench/internal/cliflag"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	rf := cliflag.RegisterResilience()
	flag.Parse()

	inj, err := mobilebench.ParseInjection(rf.InjectSpec)
	if err != nil {
		fatal(err)
	}
	c, err := mobilebench.Characterize(mobilebench.Options{
		Runs:       *runs,
		Workers:    *workers,
		MaxRetries: rf.MaxRetries,
		RunTimeout: rf.RunTimeout,
		FailFast:   rf.FailFast,
		MinRuns:    rf.MinRuns,
		Inject:     inj,
	})
	if err != nil {
		fatal(err)
	}
	if c.Degraded() {
		fmt.Fprintln(os.Stderr, "mbreport: warning: collection degraded by faults:")
		for _, p := range c.Provenance() {
			if p.Degraded() {
				fmt.Fprintf(os.Stderr, "mbreport:   %s\n", p)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := c.WriteReport(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbreport:", err)
	os.Exit(1)
}
