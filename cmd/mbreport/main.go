// Command mbreport runs the full characterization and writes the complete
// report — Figure 1 metrics, Table III correlations, Table V load levels,
// Table VI subsets and the Section V observation checks — to stdout or a
// file. It is the one-command version of the paper's evaluation section.
//
// Usage:
//
//	mbreport [-runs N] [-workers N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	c, err := mobilebench.Characterize(mobilebench.Options{Runs: *runs, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := c.WriteReport(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbreport:", err)
	os.Exit(1)
}
