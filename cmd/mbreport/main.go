// Command mbreport runs the full characterization and writes the complete
// report — Figure 1 metrics, Table III correlations, Table V load levels,
// Table VI subsets and the Section V observation checks — to stdout or a
// file. It is the one-command version of the paper's evaluation section.
//
// Usage:
//
//	mbreport [-runs N] [-workers N] [-o FILE] [-max-retries N]
//	         [-run-timeout D] [-min-runs N] [-fail-fast] [-inject SPEC]
//	         [-checkpoint FILE] [-resume]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobilebench"
	"mobilebench/internal/checkpoint"
	"mobilebench/internal/cliflag"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	inj, err := mobilebench.ParseInjection(rf.InjectSpec)
	if err != nil {
		fatal(err)
	}
	c, err := mobilebench.Characterize(mobilebench.Options{
		Runs:       *runs,
		Workers:    *workers,
		MaxRetries: rf.MaxRetries,
		RunTimeout: rf.RunTimeout,
		FailFast:   rf.FailFast,
		MinRuns:    rf.MinRuns,
		Inject:     inj,
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	if c.Degraded() {
		fmt.Fprintln(os.Stderr, "mbreport: warning: collection degraded by faults:")
		for _, p := range c.Provenance() {
			if p.Degraded() {
				fmt.Fprintf(os.Stderr, "mbreport:   %s\n", p)
			}
		}
	}

	if *out == "" {
		if err := c.WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	// Atomic replace: the report lands under its final name only once fully
	// written, so a crash mid-write never leaves a truncated file where a
	// previous good report used to be.
	if err := checkpoint.WriteTo(*out, func(w io.Writer) error {
		return c.WriteReport(w)
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbreport:", err)
	os.Exit(1)
}
