package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mobilebench/internal/lint"
)

// vetConfig is the unit-check configuration cmd/go hands a vet tool: the
// package's sources plus maps resolving its imports to compiled export
// data and serialized facts. Field names follow cmd/go/internal/work's
// vetConfig verbatim.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	ModulePath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	// PackageVetx maps import paths to the .vetx fact files earlier units
	// of this vet invocation produced; VetxOutput is where this unit's own
	// facts go. This is how cross-package facts travel between processes.
	PackageVetx map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a cmd/go *.cfg
// file: the `go vet -vettool=mblint` path. Types for imports come from the
// export data cmd/go already compiled, so no source re-checking happens;
// facts about imported functions come from their units' .vetx files.
func runVetUnit(cfgFile, configPath string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	var vc vetConfig
	if err := json.Unmarshal(data, &vc); err != nil {
		fmt.Fprintf(os.Stderr, "mblint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	store := lint.NewFactStore()

	// Only units of the module under vet get source analysis: mblint's
	// invariants are contracts of THIS module, and the blocking/panic
	// tables already cover the stdlib by name (summarizing runtime/fmt
	// source would mark every allocation may-block via the GC machinery).
	// Standard-library and external-module units get empty fact files.
	// Module units are always analyzed — even VetxOnly dependency units —
	// because their exported facts are the whole point; VetxOnly only
	// suppresses the diagnostics.
	if vc.Standard[vc.ImportPath] || !inModule(vc.ImportPath, vc.ModulePath) {
		return writeVetx(vc.VetxOutput, store)
	}

	if rc := importDepFacts(store, vc.PackageVetx); rc != 0 {
		return rc
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(vc.GoFiles))
	names := append([]string(nil), vc.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the unit's export-data map, tolerating the
	// vendor-style path indirection in ImportMap.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := vc.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := vc.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := vc.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(vc.ImportPath, fset, files, info)
	if err != nil {
		if vc.SucceedOnTypecheckFailure {
			return writeVetx(vc.VetxOutput, store)
		}
		fmt.Fprintf(os.Stderr, "mblint: typechecking %s: %v\n", vc.ImportPath, err)
		return 1
	}

	cfg := lint.DefaultConfig()
	root := moduleRootFor(vc.Dir)
	if configPath != "" {
		if cfg, err = lint.LoadConfig(configPath); err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
	} else if root != "" {
		if c, err := loadConfig("", root); err == nil {
			cfg = c
		}
	}

	pkg := &lint.Package{Path: vc.ImportPath, Dir: vc.Dir, Files: files, Types: tpkg, TypesInfo: info}
	findings, err := lint.RunAnalyzersStore([]*lint.Package{pkg}, lint.All(), cfg, fset, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	if vc.VetxOnly {
		// A dependency-only unit: facts matter, diagnostics do not (the
		// unit will be — or was — vetted as a target in its own right).
		return writeVetx(vc.VetxOutput, store)
	}
	if root != "" {
		if b, err := lint.LoadBaseline(filepath.Join(root, defaultBaselineName)); err == nil {
			findings, _ = b.Filter(findings, root)
		}
	}
	lint.Print(os.Stderr, findings)
	if rc := writeVetx(vc.VetxOutput, store); rc != 0 {
		return rc
	}
	for _, f := range findings {
		if cfg.SeverityOf(f.Pass) == "error" {
			return 2
		}
	}
	return 0
}

// importDepFacts seeds the store with the facts every dependency unit
// exported. Order doesn't matter semantically (paths are disjoint per
// package) but iterate sorted anyway for reproducible error output.
func importDepFacts(store *lint.FactStore, vetx map[string]string) int {
	paths := make([]string, 0, len(vetx))
	for p := range vetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(vetx[p])
		if err != nil {
			// A missing dependency fact file degrades the analysis (calls
			// into that package read as non-blocking), it doesn't fail it.
			continue
		}
		if err := store.ImportJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "mblint: facts for %s: %v\n", p, err)
			return 1
		}
	}
	return 0
}

// writeVetx writes the unit's serialized facts where cmd/go expects them.
func writeVetx(path string, store *lint.FactStore) int {
	if path == "" {
		return 0
	}
	data, err := store.ExportJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil { //mblint:ignore atomicwrite cmd/go owns this cache file and its lifecycle
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	return 0
}

// inModule reports whether importPath belongs to the module cmd/go is
// vetting (the unit's ModulePath). Standard-library units carry an empty
// ModulePath.
func inModule(importPath, modulePath string) bool {
	if modulePath == "" || modulePath == "std" || modulePath == "cmd" {
		return false
	}
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
}

// moduleRootFor walks up from dir to the nearest go.mod, or "".
func moduleRootFor(dir string) string {
	for dir != "" {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
	return ""
}
