package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mobilebench/internal/lint"
)

// vetConfig is the unit-check configuration cmd/go hands a vet tool: the
// package's sources plus maps resolving its imports to compiled export
// data. Field names follow cmd/go/internal/work's vetConfig verbatim.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a cmd/go *.cfg
// file: the `go vet -vettool=mblint` path. Types for imports come from the
// export data cmd/go already compiled, so no source re-checking happens.
func runVetUnit(cfgFile, configPath string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	var vc vetConfig
	if err := json.Unmarshal(data, &vc); err != nil {
		fmt.Fprintf(os.Stderr, "mblint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// go vet hands every dependency unit to the tool so fact-based
	// checkers can propagate; mblint keeps no cross-package facts and its
	// invariants are contracts of THIS module, so dependency-only units
	// and standard-library packages get an empty facts file and no
	// diagnostics.
	if vc.VetxOnly || vc.Standard[vc.ImportPath] {
		return writeVetx(vc.VetxOutput)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(vc.GoFiles))
	names := append([]string(nil), vc.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the unit's export-data map, tolerating the
	// vendor-style path indirection in ImportMap.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := vc.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := vc.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := vc.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(vc.ImportPath, fset, files, info)
	if err != nil {
		if vc.SucceedOnTypecheckFailure {
			return writeVetx(vc.VetxOutput)
		}
		fmt.Fprintf(os.Stderr, "mblint: typechecking %s: %v\n", vc.ImportPath, err)
		return 1
	}

	cfg := lint.DefaultConfig()
	if configPath != "" {
		if cfg, err = lint.LoadConfig(configPath); err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
	} else if root := moduleRootFor(vc.Dir); root != "" {
		if c, err := loadConfig("", root); err == nil {
			cfg = c
		}
	}

	pkg := &lint.Package{Path: vc.ImportPath, Dir: vc.Dir, Files: files, Types: tpkg, TypesInfo: info}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All(), cfg, fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	lint.Print(os.Stderr, findings)
	if rc := writeVetx(vc.VetxOutput); rc != 0 {
		return rc
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts file cmd/go expects from a vet tool.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil { //mblint:ignore atomicwrite cmd/go owns this cache file and its lifecycle
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	return 0
}

// moduleRootFor walks up from dir to the nearest go.mod, or "".
func moduleRootFor(dir string) string {
	for dir != "" {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
	return ""
}
