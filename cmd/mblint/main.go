// Command mblint is mobilebench's invariant multichecker: five static
// analysis passes (mapiterorder, nondeterm, atomicwrite, ctxloop, errwrap)
// that machine-enforce the pipeline's determinism, atomic-I/O and
// cancellation guarantees.
//
// Standalone:
//
//	go run ./cmd/mblint ./...            # lint the whole module
//	go run ./cmd/mblint -fix ./...       # also apply mechanical fixes
//	go run ./cmd/mblint -list            # describe the passes
//
// As a vet tool (speaks the cmd/go unitchecker protocol):
//
//	go build -o /tmp/mblint ./cmd/mblint
//	go vet -vettool=/tmp/mblint ./...
//
// Exit status is 0 when the tree is clean, 2 when findings were reported
// and 1 on operational errors. Findings are suppressed per line with
// `//mblint:ignore <pass> <reason>` and per package via the -config JSON
// (see internal/lint.Config).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobilebench/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mblint", flag.ContinueOnError)
	configPath := fs.String("config", "", "JSON lint config overlaying the built-in policy (default: .mblint.json at the module root, if present)")
	fix := fs.Bool("fix", false, "apply mechanical suggested fixes to the working tree")
	list := fs.Bool("list", false, "describe the passes and exit")
	version := fs.String("V", "", "print version (vet tool protocol)")
	printFlags := fs.Bool("flags", false, "print flag JSON (vet tool protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// cmd/go probes vet tools with -V=full and -flags before handing over
	// a *.cfg unit file; answer all three shapes of that protocol.
	if *version != "" {
		fmt.Printf("mblint version v1.0.0-%s\n", lint.Fingerprint())
		return 0
	}
	if *printFlags {
		fmt.Println("[]")
		return 0
	}
	if rest := fs.Args(); len(rest) == 1 && filepath.Ext(rest[0]) == ".cfg" {
		return runVetUnit(rest[0], *configPath)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	cfg, err := loadConfig(*configPath, moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	paths, err := lint.ExpandPatterns(moduleDir, loader.ModulePath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := lint.RunAnalyzers(pkgs, lint.All(), cfg, loader.Fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	lint.Print(os.Stderr, findings)
	if *fix {
		n, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: applying fixes: %v\n", err)
			return 1
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "mblint: applied %d fix(es); re-run to verify\n", n)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// loadConfig resolves the lint config: an explicit -config path, else the
// module's .mblint.json if present, else the built-in defaults.
func loadConfig(explicit, moduleDir string) (*lint.Config, error) {
	path := explicit
	if path == "" {
		candidate := filepath.Join(moduleDir, ".mblint.json")
		if _, err := os.Stat(candidate); err != nil {
			return lint.DefaultConfig(), nil
		}
		path = candidate
	}
	return lint.LoadConfig(path)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory; run mblint inside the module")
		}
		dir = parent
	}
}
