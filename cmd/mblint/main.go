// Command mblint is mobilebench's invariant multichecker: nine static
// analysis passes (atomicwrite, ctxloop, errwrap, fpcomplete, goroleak,
// mapiterorder, mutexhold, nondeterm, wireframe) that machine-enforce
// the pipeline's determinism, atomic-I/O, cancellation, cache-key and
// concurrency guarantees. Passes share cross-package function facts
// (may-block, acquires-mutex, may-panic, fingerprint field reads), so a
// blocking helper in one package is visible to callers in another.
//
// Standalone:
//
//	go run ./cmd/mblint ./...              # lint the whole module
//	go run ./cmd/mblint -fix ./...         # also apply mechanical fixes
//	go run ./cmd/mblint -json ./...        # machine-readable findings on stdout
//	go run ./cmd/mblint -sarif out.sarif ./...  # SARIF 2.1.0 for code scanning
//	go run ./cmd/mblint -list              # describe the passes
//
// As a vet tool (speaks the cmd/go unitchecker protocol, including fact
// serialization through .vetx files):
//
//	go build -o /tmp/mblint ./cmd/mblint
//	go vet -vettool=/tmp/mblint ./...
//
// Findings already recorded in the module's .mblint-baseline.json are
// suppressed (use -baseline to point elsewhere, -baseline none to
// disable, -write-baseline to accept the current findings). Exit status
// is 0 when no fresh error-severity findings remain, 2 when some were
// reported and 1 on operational errors. Findings are suppressed per
// line with `//mblint:ignore <pass> <reason>` and per package via the
// -config JSON (see internal/lint.Config).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobilebench/internal/checkpoint"
	"mobilebench/internal/lint"
)

// defaultBaselineName is the baseline file auto-detected at the module root.
const defaultBaselineName = ".mblint-baseline.json"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mblint", flag.ContinueOnError)
	configPath := fs.String("config", "", "JSON lint config overlaying the built-in policy (default: .mblint.json at the module root, if present)")
	fix := fs.Bool("fix", false, "apply mechanical suggested fixes to the working tree")
	list := fs.Bool("list", false, "describe the passes and exit")
	jsonOut := fs.Bool("json", false, "print findings as JSON on stdout instead of text on stderr")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings (default: "+defaultBaselineName+" at the module root, if present; \"none\" disables)")
	writeBaseline := fs.Bool("write-baseline", false, "record the current findings as the baseline and exit")
	version := fs.String("V", "", "print version (vet tool protocol)")
	printFlags := fs.Bool("flags", false, "print flag JSON (vet tool protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// cmd/go probes vet tools with -V=full and -flags before handing over
	// a *.cfg unit file; answer all three shapes of that protocol.
	if *version != "" {
		fmt.Printf("mblint version v1.0.0-%s\n", lint.Fingerprint())
		return 0
	}
	if *printFlags {
		fmt.Println("[]")
		return 0
	}
	if rest := fs.Args(); len(rest) == 1 && filepath.Ext(rest[0]) == ".cfg" {
		return runVetUnit(rest[0], *configPath)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	cfg, err := loadConfig(*configPath, moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	paths, err := lint.ExpandPatterns(moduleDir, loader.ModulePath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := lint.RunAnalyzers(pkgs, lint.All(), cfg, loader.Fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
		return 1
	}

	baseline := resolveBaselinePath(*baselinePath, moduleDir)
	if *writeBaseline {
		if baseline == "" {
			fmt.Fprintln(os.Stderr, "mblint: -write-baseline needs a baseline path (-baseline none was given)")
			return 1
		}
		if err := lint.WriteBaseline(baseline, findings, moduleDir); err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "mblint: wrote %d finding(s) to %s\n", len(findings), baseline)
		return 0
	}
	fresh := findings
	if baseline != "" {
		b, err := lint.LoadBaseline(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		var suppressed int
		fresh, suppressed = b.Filter(findings, moduleDir)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "mblint: %d baselined finding(s) suppressed (see %s)\n", suppressed, baseline)
		}
	}

	if *jsonOut {
		data, err := lint.EncodeJSON(fresh, cfg, moduleDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		os.Stdout.Write(data)
	} else {
		lint.Print(os.Stderr, fresh)
	}
	if *sarifPath != "" {
		data, err := lint.EncodeSARIF(fresh, cfg, moduleDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: %v\n", err)
			return 1
		}
		if err := checkpoint.WriteFile(*sarifPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mblint: writing SARIF: %v\n", err)
			return 1
		}
	}
	if *fix {
		n, err := lint.ApplyFixes(fresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mblint: applying fixes: %v\n", err)
			return 1
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "mblint: applied %d fix(es); re-run to verify\n", n)
		}
	}
	for _, f := range fresh {
		if cfg.SeverityOf(f.Pass) == "error" {
			return 2
		}
	}
	return 0
}

// resolveBaselinePath turns the -baseline flag into a concrete path:
// explicit value wins ("none" disables), else the module-root default
// applies — always for -write-baseline, and for reads whenever the file
// exists.
func resolveBaselinePath(explicit, moduleDir string) string {
	switch explicit {
	case "none":
		return ""
	case "":
		return filepath.Join(moduleDir, defaultBaselineName)
	default:
		return explicit
	}
}

// loadConfig resolves the lint config: an explicit -config path, else the
// module's .mblint.json if present, else the built-in defaults.
func loadConfig(explicit, moduleDir string) (*lint.Config, error) {
	path := explicit
	if path == "" {
		candidate := filepath.Join(moduleDir, ".mblint.json")
		if _, err := os.Stat(candidate); err != nil {
			return lint.DefaultConfig(), nil
		}
		path = candidate
	}
	return lint.LoadConfig(path)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory; run mblint inside the module")
		}
		dir = parent
	}
}
