package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/cluster"
	"mobilebench/internal/core"
	"mobilebench/internal/sim"
)

// runFeatures prints the normalized clustering features, the pairwise
// distance matrix and each benchmark's nearest neighbours — the view used
// to calibrate the similarity analysis.
func runFeatures(runs, workers int, rf *cliflag.Resilience, cf *cliflag.Checkpoint) {
	inj, err := rf.Injector()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj},
		Runs:       runs,
		Workers:    workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	cliflag.WarnDegraded("mbcalibrate", ds)
	rows := ds.NormalizedFeatures()
	names := ds.Names()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 1, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, f := range core.FeatureNames() {
		fmt.Fprintf(tw, "\t%s", f[:min(8, len(f))])
	}
	fmt.Fprintln(tw)
	for i, r := range rows {
		fmt.Fprintf(tw, "%s", names[i])
		for _, v := range r {
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\nnearest neighbours:")
	d := cluster.DistanceMatrix(rows)
	for i := range rows {
		type nb struct {
			j int
			v float64
		}
		var ns []nb
		for j := range rows {
			if j != i {
				ns = append(ns, nb{j, d[i][j]})
			}
		}
		for a := 0; a < 3; a++ {
			best := a
			for b := a + 1; b < len(ns); b++ {
				if ns[b].v < ns[best].v {
					best = b
				}
			}
			ns[a], ns[best] = ns[best], ns[a]
		}
		fmt.Printf("%-26s -> %s (%.2f), %s (%.2f), %s (%.2f)\n",
			names[i], names[ns[0].j], ns[0].v, names[ns[1].j], ns[1].v, names[ns[2].j], ns[2].v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
