// Command mbcalibrate runs every analysis unit through the simulator and
// prints measured aggregates next to the paper's calibration targets,
// together with the duty-factor corrections that would align the dynamic
// instruction counts. It is the developer tool used to fit
// internal/workload/calibration.go.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/sim"
	"mobilebench/internal/workload"
)

func main() {
	runs := flag.Int("runs", 1, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	analysis := flag.Bool("analysis", false, "also run the downstream analyses (clustering, subsets, observations)")
	features := flag.Bool("features", false, "print normalized clustering features and distances")
	fastForward := flag.Bool("fast-forward", false,
		"skip steady-state phase ticks analytically (about 4x faster; counters drift within the differential-suite tolerances)")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	pf := cliflag.RegisterProfile()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "mbcalibrate: %v\n", err)
		}
	}()
	if *analysis {
		runAnalysis(*runs, *workers, rf, cf)
		return
	}
	if *features {
		runFeatures(*runs, *workers, rf, cf)
		return
	}

	inj, err := rf.Injector()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	// One Collect over every unit instead of a per-unit loop: the fan-out
	// keeps all cores busy and -checkpoint/-resume cover the whole table.
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj, FastForward: *fastForward},
		Runs:       *runs,
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\truntime\tIC(B)\ttargetIC\tdutyFix\tIPC\ttgtIPC\tcMPKI\tbMPKI\tCPU\tGPU\tShad\tBus\tAIE\tMem%\tMemMB\tLload\tMload\tBload")
	for _, u := range ds.Units {
		w := u.Workload
		if prov, ok := ds.ProvenanceOf(w.Name); ok && prov.Degraded() {
			fmt.Fprintf(os.Stderr, "mbcalibrate: warning: %s\n", prov)
		}
		a := u.Agg
		t, _ := workload.TargetFor(w.Name)
		icB := a.InstrCount / 1e9
		fix := 0.0
		if icB > 0 {
			fix = t.ICBillions / icB
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.1f\t%.3f\t%.2f\t%.2f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f\t%.2f\t%.2f\t%.2f\n",
			a.Name, a.RuntimeSec, icB, t.ICBillions, fix, a.IPC, t.IPC,
			a.CacheMPKI, a.BranchMPKI,
			a.AvgCPULoad, a.AvgGPULoad, a.AvgShadersBusy, a.AvgGPUBusBusy,
			a.AvgAIELoad, a.AvgUsedMemFrac, a.PeakUsedMemMB,
			a.ClusterLoad[0], a.ClusterLoad[1], a.ClusterLoad[2])
	}
	tw.Flush()
}
