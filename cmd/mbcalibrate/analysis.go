package main

import (
	"fmt"
	"os"
	"sort"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/sim"
	"mobilebench/internal/soc"
)

// runAnalysis prints the downstream analyses (correlations, clustering,
// load levels, subsets, observations) for calibration review.
func runAnalysis(runs, workers int, rf *cliflag.Resilience, cf *cliflag.Checkpoint) {
	inj, err := rf.Injector()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj},
		Runs:       runs,
		Workers:    workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	cliflag.WarnDegraded("mbcalibrate", ds)

	fmt.Println("== Table III correlations ==")
	t3 := ds.TableIII()
	for i, a := range t3.Metrics {
		for j := 0; j <= i; j++ {
			fmt.Printf("%7.3f", t3.R[i][j])
		}
		fmt.Printf("  %s\n", a)
	}

	fmt.Println("\n== Clustering (k=5) ==")
	agree, cs, err := ds.AgreementAcrossAlgorithms(5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	fmt.Println("algorithms agree:", agree)
	for _, c := range cs {
		fmt.Printf("-- %s:\n", c.Algorithm)
		for id, g := range c.Groups {
			fmt.Printf("   C%d: %v\n", id, g)
		}
	}

	fmt.Println("\n== Optimal k sweep (2..9) ==")
	scores, err := ds.Figure4(2, 9)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	for _, s := range scores {
		fmt.Printf("%-22s k=%d dunn=%.3f sil=%.3f apn=%.3f ad=%.3f\n",
			s.Algorithm, s.K, s.Dunn, s.Silhouette, s.APN, s.AD)
	}
	k, _ := ds.OptimalK(2, 9)
	fmt.Println("best k:", k)

	fmt.Println("\n== Table V ==")
	t5, err := ds.TableV()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	for _, kind := range soc.Clusters() {
		fmt.Printf("%-12s", kind)
		for _, v := range t5[kind] {
			fmt.Printf(" %5.1f%%", v*100)
		}
		fmt.Println()
	}

	fmt.Println("\n== Table VI ==")
	t6, err := ds.TableVI()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("original runtime: %.1f s\n", ds.TotalRuntimeSec())
	for _, r := range t6 {
		fmt.Printf("%-12s %8.1f s  -%.2f%%  %v\n", r.Set.Name, r.RuntimeSec, r.ReductionFrac*100, r.Set.Members)
	}

	gpuName, gpuV := ds.HighestAvgGPULoad()
	aieName, aieV := ds.HighestAvgAIELoad()
	fmt.Printf("\nhighest avg GPU load: %s (%.2f)\nhighest avg AIE load: %s (%.2f)\n",
		gpuName, gpuV, aieName, aieV)

	fmt.Println("\n== Figure 7 ==")
	curves, err := ds.Figure7()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-12s:", name)
		for _, p := range curves[name] {
			fmt.Printf(" %d:%.2f", p.N, p.Distance)
		}
		fmt.Println()
	}

	fmt.Println("\n== Observations ==")
	obs, err := ds.Observations()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbcalibrate:", err)
		os.Exit(1)
	}
	for _, o := range obs {
		status := "PASS"
		if !o.Holds {
			status = "FAIL"
		}
		fmt.Printf("[%s] #%d %s\n        %s\n", status, o.ID, o.Title, o.Detail)
	}
}
