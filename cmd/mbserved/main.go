// Command mbserved serves the characterization pipeline over HTTP:
// characterize/cluster/subset jobs run through a bounded queue with load
// shedding (429 + Retry-After), per-job deadlines and crash-safe state.
// Collections checkpoint every completed (benchmark, run), so a drained or
// killed server resumes its unfinished jobs on the next start instead of
// redoing them.
//
// Usage:
//
//	mbserved -state DIR [-addr :8089] [-queue N] [-concurrent N]
//	         [-job-timeout D] [-drain-grace D] [-pprof ADDR]
//
// Submit and inspect jobs:
//
//	curl -d '{"kind":"characterize","runs":1}' localhost:8089/jobs
//	curl localhost:8089/jobs/job-000000
//
// On SIGTERM or SIGINT the server drains: admission stops (503), queued
// jobs stay persisted for the next start, and in-flight jobs get the grace
// period to finish before being interrupted at a checkpointed boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobilebench/internal/server"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	state := flag.String("state", "mbserved-state", "directory for job records and collection checkpoints")
	queue := flag.Int("queue", 8, "queued-job bound; submissions beyond it are shed with 429")
	concurrent := flag.Int("concurrent", 1, "jobs running at once")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline unless the job sets its own (0 = none)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "how long a drain lets in-flight jobs finish before interrupting them")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (off when empty)")
	flag.Parse()

	if *pprofAddr != "" {
		// A separate listener keeps the debug surface off the job API's
		// address; DefaultServeMux carries the net/http/pprof handlers.
		go func() {
			fmt.Fprintf(os.Stderr, "mbserved: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mbserved: pprof listener:", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		StateDir:      *state,
		QueueDepth:    *queue,
		MaxConcurrent: *concurrent,
		JobTimeout:    *jobTimeout,
		DrainGrace:    *drainGrace,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mbserved: listening on %s, state in %s\n", *addr, *state)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "mbserved: %v: draining (in-flight jobs get %s)\n", sig, *drainGrace)
	}

	// Drain jobs first — /healthz and job reads keep answering meanwhile —
	// then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mbserved: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbserved:", err)
	os.Exit(1)
}
