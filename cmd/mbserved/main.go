// Command mbserved serves the characterization pipeline over HTTP:
// characterize/cluster/subset jobs run through a bounded queue with load
// shedding (429 + adaptive Retry-After), per-job deadlines and crash-safe
// state. Collections checkpoint every completed (benchmark, run), so a
// drained or killed server resumes its unfinished jobs on the next start
// instead of redoing them.
//
// Single process:
//
//	mbserved -state DIR [-addr :8089] [-queue N] [-concurrent N]
//	         [-cache-dir DIR] [-job-timeout D] [-drain-grace D] [-pprof ADDR]
//
// Fleet: one coordinator shards jobs across N worker processes over a
// versioned JSON-lines protocol. Workers heartbeat their leases; a worker
// that dies (kill -9 included) loses its lease and the job is
// re-dispatched, resuming bit-identically from its checkpoint. The fleet
// shares one filesystem for -state (and -cache-dir): one box, or a shared
// volume.
//
//	mbserved -coordinator :9090 -state DIR -cache-dir DIR -concurrent 4
//	mbserved -worker HOST:9090 [-worker-id ID] [-capacity N] [-heartbeat D]
//
// Submit and inspect jobs:
//
//	curl -d '{"kind":"characterize","runs":1}' localhost:8089/jobs
//	curl localhost:8089/jobs/job-000000
//
// Streaming ingest (-stream): measurement records fold one at a time into
// an incrementally re-clustered analysis — delta distance matrices plus
// warm-started re-validation instead of a full batch sweep per record.
// Every record is fsynced to an append-only log before it is acked, and a
// restart replays the log bit-identically.
//
//	mbserved -state DIR -stream [-stream-kmin 2] [-stream-kmax 9]
//	         [-stream-churn F] [-stream-exact]
//	curl -d '{"unit":"x","runtime_sec":9,"features":[...]}' localhost:8089/v1/stream
//	curl localhost:8089/v1/stream/state
//	curl 'localhost:8089/v1/stream/changes?since=0'
//	curl -XPOST localhost:8089/v1/stream/report   # batch re-analysis as a job
//
// On SIGTERM or SIGINT the server drains: admission stops (503), queued
// jobs stay persisted for the next start, and in-flight jobs get the grace
// period to finish before being interrupted at a checkpointed boundary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/cosim"
	"mobilebench/internal/dist"
	"mobilebench/internal/server"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	state := flag.String("state", "mbserved-state", "directory for job records and collection checkpoints")
	queue := flag.Int("queue", 8, "queued-job bound; submissions beyond it are shed with 429")
	concurrent := flag.Int("concurrent", 1, "jobs running at once")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline unless the job sets its own (0 = none)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "how long a drain lets in-flight jobs finish before interrupting them")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory; repeat submissions answer from it without executing (off when empty)")
	coordinator := flag.String("coordinator", "", "run as fleet coordinator: listen for workers on this address and dispatch jobs to them")
	workerAddr := flag.String("worker", "", "run as fleet worker: connect to the coordinator at this address (no HTTP API)")
	workerID := flag.String("worker-id", "", "worker identity, unique per fleet (default worker-<pid>)")
	capacity := flag.Int("capacity", 1, "jobs this worker runs concurrently (worker mode)")
	heartbeat := flag.Duration("heartbeat", time.Second, "per-lease heartbeat period (worker mode)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "heartbeat silence after which a lease is revoked and its job re-dispatched (coordinator mode)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (off when empty)")
	tf := cliflag.RegisterTiming()
	sf := cliflag.RegisterStream()
	flag.Parse()

	if *coordinator != "" && *workerAddr != "" {
		fatal(errors.New("-coordinator and -worker are mutually exclusive"))
	}
	if err := tf.Validate(); err != nil {
		fatal(err)
	}
	if err := sf.Validate(); err != nil {
		fatal(err)
	}
	if *workerAddr != "" && sf.Enable {
		fatal(errors.New("-stream is server configuration; a worker serves no HTTP API"))
	}
	if *coordinator != "" && tf.ReplayDir != "" {
		fatal(errors.New("-timing-replay is worker configuration; a coordinator never executes jobs"))
	}

	if *pprofAddr != "" {
		// A separate listener keeps the debug surface off the job API's
		// address; DefaultServeMux carries the net/http/pprof handlers.
		go func() {
			fmt.Fprintf(os.Stderr, "mbserved: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mbserved: pprof listener:", err)
			}
		}()
	}

	if *workerAddr != "" {
		timing, err := tf.Provider(nil)
		if err != nil {
			fatal(err)
		}
		if timing != nil {
			defer timing.Close()
		}
		runWorker(*workerAddr, *workerID, *capacity, *heartbeat, timing)
		return
	}

	cfg := server.Config{
		StateDir:      *state,
		QueueDepth:    *queue,
		MaxConcurrent: *concurrent,
		JobTimeout:    *jobTimeout,
		DrainGrace:    *drainGrace,
		CacheDir:      *cacheDir,
		Stream: server.StreamConfig{
			Enabled:    sf.Enable,
			KMin:       sf.KMin,
			KMax:       sf.KMax,
			ChurnLimit: sf.Churn,
			Exact:      sf.Exact,
		},
	}
	if *coordinator == "" {
		// Single-process mode executes jobs in this process, so the
		// external model plugs in through the Execute hook and its identity
		// into the cache keys.
		timing, err := tf.Provider(nil)
		if err != nil {
			fatal(err)
		}
		if timing != nil {
			defer timing.Close()
			cfg.TimingFingerprint = timing.Fingerprint()
			cfg.Execute = func(ctx context.Context, id string, spec server.Spec, checkpointPath string) (json.RawMessage, error) {
				return server.ExecuteSpecWith(ctx, spec, checkpointPath, server.ExecOptions{Timing: timing})
			}
		}
	} else {
		// A coordinator dispatches specs to workers and never executes one
		// itself, so it keeps no timing child of its own. It still probes
		// -timing-model once (spawn, handshake, close) for the fleet's
		// timing identity: the cache and coalescing keys must carry the
		// same fingerprint the workers' collections do, or a persistent
		// -cache-dir would serve one timing configuration's bytes under
		// another. Workers must be started with the same -timing-model.
		fp, err := tf.Fingerprint(nil)
		if err != nil {
			fatal(err)
		}
		cfg.TimingFingerprint = fp
	}

	var coord *dist.Coordinator
	if *coordinator != "" {
		coord = dist.NewCoordinator(dist.CoordinatorConfig{LeaseTTL: *leaseTTL})
		ln, err := net.Listen("tcp", *coordinator)
		if err != nil {
			fatal(err)
		}
		go coord.Serve(ln)
		fmt.Fprintf(os.Stderr, "mbserved: coordinating workers on %s\n", ln.Addr())
		cfg.Execute = func(ctx context.Context, id string, spec server.Spec, checkpointPath string) (json.RawMessage, error) {
			raw, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			return coord.Execute(ctx, id, raw, checkpointPath)
		}
		cfg.Ready = func() bool {
			workers, _, _ := coord.Stats()
			return workers > 0
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mbserved: listening on %s, state in %s\n", *addr, *state)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "mbserved: %v: draining (in-flight jobs get %s)\n", sig, *drainGrace)
	}

	// Drain jobs first — /healthz and job reads keep answering meanwhile —
	// then close the listener and the fleet.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	if coord != nil {
		coord.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mbserved: drained cleanly")
}

// runWorker is the worker-mode main loop: execute dispatched specs
// through the same checkpointed path the single-process server uses,
// until the coordinator rejects us or a signal lands. All workers of a
// fleet must share one -timing-model configuration: a non-exact model
// changes checkpoint fingerprints, and a job re-dispatched to a
// differently-configured worker would refuse the first worker's snapshot.
func runWorker(addr, id string, capacity int, heartbeat time.Duration, timing *cosim.Provider) {
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	eo := server.ExecOptions{}
	if timing != nil {
		eo.Timing = timing
	}
	w, err := dist.NewWorker(dist.WorkerConfig{ID: id, Capacity: capacity, Heartbeat: heartbeat},
		func(ctx context.Context, jobID string, raw json.RawMessage, checkpointPath string) (json.RawMessage, error) {
			var sp server.Spec
			if err := json.Unmarshal(raw, &sp); err != nil {
				return nil, fmt.Errorf("mbserved: undecodable spec for %s: %w", jobID, err)
			}
			if err := sp.Validate(); err != nil {
				return nil, err
			}
			return server.ExecuteSpecWith(ctx, sp, checkpointPath, eo)
		})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer cancel()
	fmt.Fprintf(os.Stderr, "mbserved: worker %s serving coordinator %s\n", id, addr)
	if err := w.Run(ctx, addr); err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mbserved: worker %s stopped\n", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbserved:", err)
	os.Exit(1)
}
