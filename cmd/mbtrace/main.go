// Command mbtrace prints the temporal analyses: Figure 2 (normalized metric
// series over normalized runtime, as sparklines) and, with -clusters, the
// Figure 3 per-cluster load levels and Table V averages.
//
// Usage:
//
//	mbtrace [-runs N] [-workers N] [-samples N] [-clusters] [-bench NAME]
//	        [-max-retries N] [-run-timeout D] [-min-runs N] [-fail-fast]
//	        [-inject SPEC] [-checkpoint FILE] [-resume]
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilebench/internal/cliflag"
	"mobilebench/internal/core"
	"mobilebench/internal/report"
	"mobilebench/internal/sim"
	"mobilebench/internal/workload"
)

func main() {
	runs := flag.Int("runs", 3, "runs to average per benchmark")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
	samples := flag.Int("samples", 100, "normalized-time resolution")
	clusters := flag.Bool("clusters", false, "print Figure 3 / Table V instead of Figure 2")
	bench := flag.String("bench", "", "limit to one benchmark (analysis-unit name)")
	rf := cliflag.RegisterResilience()
	cf := cliflag.RegisterCheckpoint()
	flag.Parse()

	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	inj, err := rf.Injector()
	if err != nil {
		fatal(err)
	}
	units := workload.AnalysisUnits()
	if *bench != "" {
		w, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		units = []workload.Workload{w}
	}
	ds, err := core.Collect(core.Options{
		Sim:        sim.Config{Fault: inj},
		Runs:       *runs,
		Units:      units,
		Workers:    *workers,
		Resilience: rf.Policy(),
		Checkpoint: cf.Path,
		Resume:     cf.Resume,
	})
	if err != nil {
		fatal(err)
	}
	cliflag.WarnDegraded("mbtrace", ds)

	if *clusters {
		f3, err := report.Figure3(ds)
		if err != nil {
			fatal(err)
		}
		if err := f3.Write(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		t5, err := report.TableV(ds)
		if err != nil {
			fatal(err)
		}
		if err := t5.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	out, err := report.Figure2(ds, *samples)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbtrace:", err)
	os.Exit(1)
}
