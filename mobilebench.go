// Package mobilebench is a workload-characterization toolkit for commercial
// mobile benchmark suites, reproducing "Workload Characterization of
// Commercial Mobile Benchmark Suites" (Kariofillis & Enright Jerger,
// ISPASS 2024).
//
// The package bundles:
//
//   - a calibrated SoC simulator modelled on the paper's Snapdragon 888
//     Hardware Development Kit (tri-cluster CPU with EAS scheduling and
//     DVFS, sampled cache hierarchy and branch predictors, an Adreno-class
//     GPU, a Hexagon-class AI engine, LPDDR5 memory and UFS storage);
//   - phase-based models of the commercial suites the paper studies
//     (3DMark, Antutu, Aitutu, Geekbench 5/6, GFXBench, PCMark) — 41
//     individually executable sub-benchmarks forming 18 analysis units;
//   - the paper's analyses: aggregate metrics and their correlations,
//     temporal behaviour, CPU-heterogeneity load levels, clustering with
//     internal and stability validation, and benchmark subsetting with the
//     Yi et al. representativeness measure.
//
// Quick start:
//
//	c, err := mobilebench.Characterize(mobilebench.Options{})
//	if err != nil { ... }
//	rows, avg := c.Figure1()
//	subsets, _ := c.TableVI()
package mobilebench

import (
	"context"
	"fmt"
	"io"
	"time"

	"mobilebench/internal/aie"
	"mobilebench/internal/branch"
	"mobilebench/internal/cache"
	"mobilebench/internal/cluster"
	"mobilebench/internal/core"
	"mobilebench/internal/cpu"
	"mobilebench/internal/fault"
	"mobilebench/internal/gpu"
	"mobilebench/internal/mem"
	"mobilebench/internal/profiler"
	"mobilebench/internal/report"
	"mobilebench/internal/roi"
	"mobilebench/internal/sim"
	"mobilebench/internal/soc"
	"mobilebench/internal/subset"
	"mobilebench/internal/workload"
)

// Re-exported model types, so custom workloads can be defined against the
// public API alone.
type (
	// Platform is a hardware description the simulator can execute on.
	Platform = soc.Platform
	// Workload is a runnable benchmark: a sequence of phases.
	Workload = workload.Workload
	// Phase is one behavioural interval of a benchmark.
	Phase = workload.Phase
	// CPUPhase is the CPU-side behaviour of a phase.
	CPUPhase = workload.CPUPhase
	// TaskSpec declares thread demands within a phase.
	TaskSpec = workload.TaskSpec
	// InstrMix is a phase's dynamic instruction mix.
	InstrMix = cpu.InstrMix
	// AccessPattern parameterizes a phase's synthetic memory stream.
	AccessPattern = cache.AccessPattern
	// BranchProfile parameterizes a phase's synthetic branch stream.
	BranchProfile = branch.Profile
	// Scene describes a phase's GPU rendering demand.
	Scene = gpu.Scene
	// GraphicsAPI selects a scene's graphics API.
	GraphicsAPI = gpu.API
	// AIEOp identifies an AI-engine operation class.
	AIEOp = aie.OpClass
	// AIEDemand is an AI-engine operation demand.
	AIEDemand = aie.Demand
	// IODemand is a storage demand.
	IODemand = mem.IODemand
	// Footprint is a phase's memory residency.
	Footprint = mem.Footprint
	// Aggregates are whole-run summary metrics.
	Aggregates = sim.Aggregates
	// Trace is the averaged counter time-series collection of a run.
	Trace = profiler.Trace
	// Summary is the streaming per-metric statistics of a run (means,
	// moments and quantile sketches), collected without a trace.
	Summary = profiler.Summary
	// TraceMode selects how much of the per-tick counter stream a
	// characterization keeps.
	TraceMode = sim.TraceMode
	// Clustering is one algorithm's benchmark grouping.
	Clustering = core.Clustering
	// Observation is one evaluated finding from the paper's Section V.
	Observation = core.Observation
	// SubsetSet is a named reduced benchmark set.
	SubsetSet = subset.Set
	// SubsetReduction is a subset's runtime-reduction record.
	SubsetReduction = subset.Reduction
	// CurvePoint is one step of a subset growth curve (Figure 7).
	CurvePoint = subset.CurvePoint
	// ValidationScores holds Dunn/Silhouette/APN/AD for one (algorithm, k).
	ValidationScores = cluster.Scores
	// Figure1Row is one benchmark's aggregate-metric entry.
	Figure1Row = core.Figure1Row
	// ROISelection is a set of representative regions of interest.
	ROISelection = roi.Selection
	// ROIInterval is one selected region of interest.
	ROIInterval = roi.Interval
	// FaultInjector deterministically injects failures into runs (chaos
	// testing); build one with ParseInjection or fault.New.
	FaultInjector = fault.Injector
	// RunError is one (benchmark, run) that failed permanently despite the
	// retry policy.
	RunError = core.RunError
	// CollectError aggregates every permanently failed run of a collection.
	CollectError = core.CollectError
	// OptionError reports one invalid option, named by field.
	OptionError = core.OptionError
	// UnitProvenance records how one benchmark's run set was collected:
	// attempts, retries, outlier re-runs, repairs and dropped runs.
	UnitProvenance = core.UnitProvenance
	// RunProvenance is one run's collection record within a UnitProvenance.
	RunProvenance = core.RunProvenance
)

// ParseInjection builds a fault injector from a comma-separated spec such as
// "crash=0.2,nan=0.1,seed=7" (the CLIs' -inject format). The empty spec
// returns a nil injector, which injects nothing.
func ParseInjection(spec string) (*FaultInjector, error) { return fault.Parse(spec) }

// Graphics APIs for Scene definitions.
const (
	APINone    = gpu.APINone
	APIOpenGL  = gpu.OpenGL
	APIVulkan  = gpu.Vulkan
	APICompute = gpu.Compute
)

// Trace materialization modes for Options.TraceMode.
const (
	// TraceFull keeps every counter's complete per-tick series (the
	// historical default; required for checkpointed characterizations).
	TraceFull = sim.TraceFull
	// TraceStreamed keeps only streaming summary statistics per metric;
	// trace-consuming analyses return core.ErrNoTrace.
	TraceStreamed = sim.TraceStreamed
	// TraceAuto keeps full series for the analysis metric set and
	// summaries for everything else — every bundled figure still works.
	TraceAuto = sim.TraceAuto
)

// ErrNoTrace is returned by trace-consuming analyses (temporal profiles,
// observation checks) when the dataset was characterized with TraceStreamed.
var ErrNoTrace = core.ErrNoTrace

// AI-engine operation classes for AIEDemand definitions.
const (
	OpFFT         = aie.OpFFT
	OpGEMM        = aie.OpGEMM
	OpConv        = aie.OpConv
	OpSuperRes    = aie.OpSuperRes
	OpImageProc   = aie.OpImageProc
	OpPSNR        = aie.OpPSNR
	OpVideoDecode = aie.OpVideoDecode
	OpVideoEncode = aie.OpVideoEncode
	OpScroll      = aie.OpScroll
)

// Snapdragon888HDK returns the paper's experimental platform.
func Snapdragon888HDK() *Platform { return soc.Snapdragon888HDK() }

// AnalysisUnits returns the paper's 18 analysis units.
func AnalysisUnits() []Workload { return workload.AnalysisUnits() }

// Executables returns the 41 individually executable sub-benchmarks.
func Executables() []Workload { return workload.Executables() }

// BenchmarkByName returns a benchmark (analysis unit or executable).
func BenchmarkByName(name string) (Workload, error) { return workload.ByName(name) }

// Options configures Characterize.
type Options struct {
	// Platform overrides the simulated hardware (default: Snapdragon 888
	// HDK).
	Platform *Platform
	// Runs is the number of averaged runs per benchmark (default 3).
	Runs int
	// Seed overrides the simulation seed (default 888).
	Seed uint64
	// TickSec overrides the sampling interval (default 0.1 s).
	TickSec float64
	// Units overrides the benchmark set (default: the 18 analysis units).
	Units []Workload
	// Workers bounds the parallelism of the simulation fan-out and the
	// figure sweeps: 0 selects one worker per CPU (the default), 1 forces
	// fully sequential execution (negative values are rejected). Every
	// (benchmark, run) pair derives an independent random stream, so the
	// result is bit-identical for any worker count.
	Workers int

	// MaxRetries is how many extra attempts each (benchmark, run) gets
	// after a failed first attempt (default 0: fail on the first error).
	MaxRetries int
	// RunTimeout bounds each attempt's wall-clock time; a hung run is
	// cancelled and retried (default 0: no timeout).
	RunTimeout time.Duration
	// FailFast aborts the whole characterization on the first permanently
	// failed run instead of finishing siblings and aggregating errors.
	FailFast bool
	// MinRuns accepts a benchmark once at least MinRuns of its Runs
	// produced valid results, recording the shortfall in the provenance
	// (default 0: every run is required).
	MinRuns int
	// Inject enables deterministic fault injection for chaos testing
	// (normally nil). Whenever every injected fault recovers through a
	// clean retry, the result is bit-identical to a fault-free run.
	Inject *FaultInjector

	// FastForward trades exactness for speed: phases that reach steady
	// state are completed analytically instead of tick by tick, cutting
	// a full characterization by roughly 4x. Aggregates drift within the
	// tolerances pinned by the simulator's differential suite (loads,
	// power and memory essentially exact; sampled counter rates within
	// ~15-25%). Off (the default) keeps the exact, byte-identical path.
	FastForward bool
	// TraceMode selects what each run materializes: TraceFull (default)
	// the complete per-tick counter traces, TraceStreamed only streaming
	// summary statistics (temporal figures and observation checks then
	// return core.ErrNoTrace), TraceAuto traces for the analysis metric
	// set plus summaries for the rest.
	TraceMode TraceMode

	// Checkpoint, when non-empty, names a snapshot file persisting every
	// completed (benchmark, run) atomically, so a killed characterization
	// loses at most the pair it was simulating.
	Checkpoint string
	// Resume restores completed (benchmark, run) pairs from the Checkpoint
	// snapshot before collecting the remainder; the result is bit-identical
	// to an uninterrupted characterization. A missing snapshot is a fresh
	// start; a corrupt, version-skewed or options-mismatched one fails with
	// a typed error from internal/checkpoint.
	Resume bool
}

// Characterization is the analysed dataset; all of the paper's tables,
// figures and observations are derived from it.
type Characterization struct {
	ds *core.Dataset
}

// Characterize runs the benchmarks on the simulated platform and returns
// the analysed dataset.
func Characterize(opts Options) (*Characterization, error) {
	return CharacterizeContext(context.Background(), opts)
}

// CharacterizeContext is Characterize with cancellation: cancelling the
// context aborts the in-flight simulations promptly instead of letting the
// remaining (benchmark, run) jobs complete.
func CharacterizeContext(ctx context.Context, opts Options) (*Characterization, error) {
	ds, err := core.CollectContext(ctx, core.Options{
		Sim: sim.Config{
			Platform:    opts.Platform,
			Seed:        opts.Seed,
			TickSec:     opts.TickSec,
			Fault:       opts.Inject,
			FastForward: opts.FastForward,
			TraceMode:   opts.TraceMode,
		},
		Runs:    opts.Runs,
		Units:   opts.Units,
		Workers: opts.Workers,
		Resilience: core.Resilience{
			MaxRetries: opts.MaxRetries,
			RunTimeout: opts.RunTimeout,
			FailFast:   opts.FailFast,
			MinRuns:    opts.MinRuns,
		},
		Checkpoint: opts.Checkpoint,
		Resume:     opts.Resume,
	})
	if err != nil {
		return nil, err
	}
	return &Characterization{ds: ds}, nil
}

// Dataset exposes the underlying dataset for advanced use within this
// module (internal packages).
func (c *Characterization) Dataset() *core.Dataset { return c.ds }

// Names returns the benchmark names in dataset order.
func (c *Characterization) Names() []string { return c.ds.Names() }

// Provenance returns the per-benchmark collection records (attempts,
// retries, outlier re-runs, repaired samples, dropped runs) in dataset
// order.
func (c *Characterization) Provenance() []UnitProvenance { return c.ds.Provenance }

// Degraded reports whether any benchmark's result fell short of a full set
// of clean runs (dropped runs or in-place trace repairs).
func (c *Characterization) Degraded() bool { return c.ds.Degraded() }

// Aggregates returns the named benchmark's run-averaged summary metrics.
func (c *Characterization) Aggregates(name string) (Aggregates, error) {
	u, err := c.ds.Unit(name)
	if err != nil {
		return Aggregates{}, err
	}
	return u.Agg, nil
}

// TraceOf returns the named benchmark's averaged counter trace.
func (c *Characterization) TraceOf(name string) (*Trace, error) {
	u, err := c.ds.Unit(name)
	if err != nil {
		return nil, err
	}
	return u.Trace, nil
}

// TotalRuntime returns the full benchmark set's runtime in seconds.
func (c *Characterization) TotalRuntime() float64 { return c.ds.TotalRuntimeSec() }

// Figure1 returns per-benchmark aggregate metrics and their averages.
func (c *Characterization) Figure1() ([]Figure1Row, Figure1Row) { return c.ds.Figure1() }

// MetricCorrelations returns the Table III Pearson matrix.
func (c *Characterization) MetricCorrelations() core.CorrelationTable { return c.ds.TableIII() }

// TemporalProfiles returns the Figure 2 normalized temporal profiles.
func (c *Characterization) TemporalProfiles(samples int) ([]core.TemporalProfile, error) {
	return c.ds.Figure2(samples)
}

// LoadLevels returns the Figure 3 per-cluster load-level occupancy.
func (c *Characterization) LoadLevels() ([]core.ClusterLoadProfile, error) { return c.ds.Figure3() }

// LoadLevelAverages returns Table V.
func (c *Characterization) LoadLevelAverages() ([soc.NumClusters][core.NumLoadLevels]float64, error) {
	return c.ds.TableV()
}

// ValidateClusterCounts sweeps k over the three algorithms (Figure 4).
func (c *Characterization) ValidateClusterCounts(kMin, kMax int) ([]ValidationScores, error) {
	return c.ds.Figure4(kMin, kMax)
}

// OptimalClusterCount aggregates a sweep into the winning k.
func (c *Characterization) OptimalClusterCount(kMin, kMax int) (int, error) {
	return c.ds.OptimalK(kMin, kMax)
}

// Cluster groups the benchmarks with the named algorithm ("kmeans", "pam"
// or "hierarchical") at k clusters.
func (c *Characterization) Cluster(algorithm string, k int) (Clustering, error) {
	alg, err := algorithmByName(algorithm)
	if err != nil {
		return Clustering{}, err
	}
	return c.ds.ClusterWith(alg, k)
}

func algorithmByName(name string) (cluster.Algorithm, error) {
	switch name {
	case "kmeans":
		return cluster.NewKMeans(), nil
	case "pam":
		return cluster.NewPAM(), nil
	case "hierarchical":
		return cluster.NewHierarchical(), nil
	default:
		return nil, fmt.Errorf("mobilebench: unknown clustering algorithm %q", name)
	}
}

// ClusteringsAgree reports whether all three algorithms produce identical
// groupings at k, returning the groupings.
func (c *Characterization) ClusteringsAgree(k int) (bool, []Clustering, error) {
	return c.ds.AgreementAcrossAlgorithms(k)
}

// Subsets computes the paper's three reduced sets with runtimes and
// reductions (Table VI).
func (c *Characterization) Subsets() ([]SubsetReduction, error) { return c.ds.TableVI() }

// SubsetGrowthCurves computes Figure 7.
func (c *Characterization) SubsetGrowthCurves() (map[string][]CurvePoint, error) {
	return c.ds.Figure7()
}

// SubsetUnderBudget greedily selects the most representative subset that
// fits the runtime budget.
func (c *Characterization) SubsetUnderBudget(budgetSec float64) (SubsetSet, error) {
	return subset.UnderBudget(c.ds.SubsetBenchmarks(), budgetSec)
}

// SubsetRepresentativeness returns the total minimum Euclidean distance of
// the given members (smaller is more representative).
func (c *Characterization) SubsetRepresentativeness(members []string) (float64, error) {
	return subset.TotalMinDistance(c.ds.SubsetBenchmarks(), members)
}

// Observations evaluates the paper's Section V findings on the dataset.
func (c *Characterization) Observations() ([]Observation, error) { return c.ds.Observations() }

// RegionsOfInterest selects representative intervals from the named
// benchmark's trace (SimPoint-style): one interval per behaviour phase with
// a weight, so a simulator can replay a fraction of the benchmark and
// reconstruct its whole-run averages. windowSec <= 0 selects the default
// 5-second windows.
func (c *Characterization) RegionsOfInterest(name string, windowSec float64) (*ROISelection, error) {
	u, err := c.ds.Unit(name)
	if err != nil {
		return nil, err
	}
	return roi.Analyze(u.Trace, roi.Options{WindowSec: windowSec})
}

// WriteReport writes a full human-readable characterization report.
func (c *Characterization) WriteReport(w io.Writer) error {
	if err := report.Figure1(c.ds).Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.TableIII(c.ds).Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	t5, err := report.TableV(c.ds)
	if err != nil {
		return err
	}
	if err := t5.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	reds, err := c.Subsets()
	if err != nil {
		return err
	}
	if err := report.TableVI(c.ds, reds).Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	obs, err := c.Observations()
	if err != nil {
		return err
	}
	return report.Observations(obs).Write(w)
}
